//! Figure 19: speedup of Dr. Top-k-assisted algorithms on the real-world
//! dataset proxies (ANN_SIFT1B distances, ClueWeb09 degrees, TwitterCOVID-19
//! fear scores).

use drtopk_bench_harness::*;
use drtopk_core::{DrTopKConfig, InnerAlgorithm};
use topk_baselines::BaselineAlgorithm;
use topk_datagen::Distribution;

fn pair(algo: BaselineAlgorithm) -> InnerAlgorithm {
    match algo {
        BaselineAlgorithm::Radix => InnerAlgorithm::Radix,
        BaselineAlgorithm::Bucket => InnerAlgorithm::Bucket,
        BaselineAlgorithm::Bitonic => InnerAlgorithm::Bitonic,
        BaselineAlgorithm::SortAndChoose => InnerAlgorithm::FlagRadix,
    }
}

fn main() {
    // the AN proxy generates true 128-d distances, which is slower: use a
    // quarter of the default size for the real-world figure
    let n = (default_n() / 4).max(1 << 16);
    let device = device();
    let mut rows = Vec::new();
    for dist in Distribution::REAL_WORLD {
        let data = dataset(dist, n);
        for k in k_sweep(4) {
            for algo in BaselineAlgorithm::TOPK {
                let base = run_baseline_checked(&device, algo, &data, k);
                let cfg = DrTopKConfig {
                    inner: pair(algo),
                    ..DrTopKConfig::default()
                };
                let dr = run_drtopk_checked(&device, &data, k, &cfg);
                rows.push(vec![
                    dist.abbrev().into(),
                    k.to_string(),
                    algo.name().into(),
                    fmt(base.time_ms),
                    fmt(dr.time_ms),
                    fmt(base.time_ms / dr.time_ms),
                ]);
            }
        }
    }
    emit(
        "fig19_speedup_realworld",
        &[
            "dataset",
            "k",
            "algorithm",
            "baseline_ms",
            "drtopk_ms",
            "speedup",
        ],
        &rows,
    );
}
