//! Table 2: scalability of distributed Dr. Top-k with varying |V| and device
//! counts (k = 128), including communication and reload overhead.
//!
//! The per-device memory capacity is pinned to the base |V| so the larger
//! input sizes reproduce the paper's reload regime at reduced scale. The
//! run is pinned to [`ReloadSchedule::Serial`] — the paper streams
//! sub-vectors serially, and Table 2's reload-overhead column assumes that
//! timeline; the overlapped schedule this reproduction adds is measured by
//! the `streamed_oversize` target instead.

use drtopk_bench_harness::*;
use drtopk_core::{distributed_dr_topk_scheduled, DrTopKConfig, ReloadSchedule};
use gpu_sim::{DeviceSpec, GpuCluster};
use topk_datagen::Distribution;

fn main() {
    let base = default_n() / 2;
    let k = 128usize;
    let mut rows = Vec::new();
    for v_mult in [1usize, 2, 4, 8] {
        let n = base * v_mult;
        let data = dataset(Distribution::Uniform, n);
        let mut single_total = None;
        for devices in [1usize, 2, 4, 8, 16] {
            let cluster = GpuCluster::homogeneous(devices, DeviceSpec::v100s());
            for d in cluster.devices() {
                d.set_capacity_elems(base);
            }
            let r = distributed_dr_topk_scheduled(
                &cluster,
                &data,
                k,
                &DrTopKConfig::default(),
                ReloadSchedule::Serial,
            );
            assert_eq!(r.values, topk_baselines::reference_topk(&data, k));
            let speedup = match single_total {
                None => {
                    single_total = Some(r.total_ms);
                    1.0
                }
                Some(t1) => t1 / r.total_ms,
            };
            rows.push(vec![
                n.to_string(),
                devices.to_string(),
                fmt(r.communication_ms),
                fmt(r.reload_overhead_ms),
                fmt(r.total_ms),
                fmt(speedup),
            ]);
        }
    }
    emit(
        "table2_multi_gpu",
        &[
            "n",
            "gpus",
            "communication_ms",
            "reload_ms",
            "total_ms",
            "speedup",
        ],
        &rows,
    );
}
