//! Figure 23: Dr. Top-k (radix) on the V100S vs the Titan Xp across k.

use drtopk_bench_harness::*;
use drtopk_core::DrTopKConfig;
use gpu_sim::{Device, DeviceSpec};
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let data = dataset(Distribution::Uniform, n);
    let v100 = Device::new(DeviceSpec::v100s());
    let titan = Device::new(DeviceSpec::titan_xp());
    let mut rows = Vec::new();
    for k in k_sweep(2) {
        let tv = run_drtopk_checked(&v100, &data, k, &DrTopKConfig::default()).time_ms;
        let tt = run_drtopk_checked(&titan, &data, k, &DrTopKConfig::default()).time_ms;
        rows.push(vec![k.to_string(), fmt(tv), fmt(tt), fmt(tt / tv)]);
    }
    emit(
        "fig23_device_comparison",
        &["k", "v100s_ms", "titan_xp_ms", "titan_over_v100"],
        &rows,
    );
}
