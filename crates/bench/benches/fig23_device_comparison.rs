//! Figure 23: Dr. Top-k across devices and k — extended from the paper's
//! V100S-vs-Titan-Xp pair to the full [`DeviceSpec::catalog()`] sweep
//! (Titan Xp → V100S → A100 → H100 → B200).
//!
//! Every cell runs the default `PathHint::Auto` pipeline, so the sweep also
//! exercises the per-device crossover: newer devices have cheaper launches
//! and higher bandwidth, which shifts the delegate→radix flip point — the
//! `*_path` columns record where each device's planner lands. Results are
//! checked against the CPU reference on every cell.

use drtopk_bench_harness::*;
use drtopk_core::{choose_path_sampled, DrTopKConfig};
use gpu_sim::{Device, DeviceSpec};
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let data = dataset(Distribution::Uniform, n);
    let catalog = DeviceSpec::catalog();
    let devices: Vec<(String, Device)> = catalog
        .iter()
        .map(|spec| (spec.name.clone(), Device::new(spec.clone())))
        .collect();

    let mut header: Vec<String> = vec!["k".to_string()];
    for (name, _) in &devices {
        header.push(format!("{name}_ms"));
        header.push(format!("{name}_path"));
    }
    header.push("oldest_over_newest".to_string());

    let mut rows = Vec::new();
    for k in k_sweep(2) {
        let mut row = vec![k.to_string()];
        let mut times = Vec::new();
        for (_, device) in &devices {
            let t = run_drtopk_checked(device, &data, k, &DrTopKConfig::default()).time_ms;
            let path = choose_path_sampled(&data, k, device.spec());
            row.push(fmt(t));
            row.push(path.name().to_string());
            times.push(t);
        }
        row.push(fmt(times[0] / times[times.len() - 1]));
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let row_strings: Vec<Vec<String>> = rows;
    emit("fig23_device_comparison", &header_refs, &row_strings);
}
