//! Large-k scalability: delegate pipeline vs multi-pass radix select vs the
//! planner's modeled crossover ([`drtopk_core::choose_path`]), swept over
//! k ∈ 2⁶ … 2¹⁷ at fixed `|V|` on the uniform dataset and the low-entropy
//! adversarial dataset (few distinct values — the radix worst case).
//!
//! Every cell runs all three paths ([`PathHint::Delegate`],
//! [`PathHint::Radix`], [`PathHint::Auto`]) on the same data and
//! self-verifies: all three must be bit-identical to the CPU reference, and
//! `Auto` must reproduce one of the two forced runs exactly (same modeled
//! transactions and makespan — the simulation is deterministic, so "picked
//! the same path" is an equality, not a tolerance). The sweep then asserts
//! the crossover acceptance criteria:
//!
//! * `Auto` matches the *better* forced path at every grid point (modeled
//!   makespan), and
//! * on the uniform dataset at k ≥ 10⁴ `Auto` strictly beats the
//!   delegate-forced run in **both** modeled transactions and makespan —
//!   the RadiK observation that the delegate construction stops paying for
//!   itself at large k. (On low-entropy data the radix chain degenerates,
//!   Auto correctly *stays* on delegates, and "strictly beats delegate" is
//!   unsatisfiable by construction — so the strict clause is scoped to
//!   uniform; the better-path clause still covers every cell.)
//!
//! Beyond the CSV every harness writes, this target records
//! `bench_results/large_k_sweep.json` under the shared drtopk-obs/v1
//! snapshot schema; the committed `large_k_sweep_baseline.json` is the
//! trajectory-tracking reference.
//!
//! Pass `--smoke` (the CI bench-smoke mode) to shrink the grid to a
//! seconds-scale run with every assertion still armed.

use std::io::Write as _;

use drtopk_bench_harness::*;
use drtopk_core::{choose_path_sampled, ChosenPath, DrTopKConfig, PathHint};
use gpu_sim::DeviceSpec;
use topk_baselines::reference_topk;
use topk_datagen::LOW_ENTROPY_DISTINCT;

/// Strict-win threshold of the acceptance criterion: above this k the
/// delegate path must lose to the crossover planner.
const STRICT_WIN_K: usize = 10_000;

struct Cell {
    dataset: &'static str,
    k: usize,
    delegate_ms: f64,
    delegate_tx: u64,
    radix_ms: f64,
    radix_tx: u64,
    auto_ms: f64,
    auto_tx: u64,
    auto_path: ChosenPath,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, k_exps) = if smoke {
        (1usize << 16, 6..=12u32)
    } else {
        (default_n().max(1 << 20), 6..=17u32)
    };
    let device = device();
    let spec = DeviceSpec::v100s();

    let datasets: [(&'static str, Vec<u32>); 2] = [
        ("uniform", topk_datagen::uniform(n, seed())),
        (
            "low_entropy",
            topk_datagen::low_entropy(n, LOW_ENTROPY_DISTINCT, seed()),
        ),
    ];

    let mut cells = Vec::new();
    for (name, data) in &datasets {
        for e in k_exps.clone() {
            let k = 1usize << e;
            if k >= n {
                break;
            }
            let expected = reference_topk(data, k);
            let run = |path: PathHint| {
                let cfg = DrTopKConfig {
                    path,
                    ..DrTopKConfig::default()
                };
                let r = drtopk_core::dr_topk_with_stats(&device, data, k, &cfg);
                assert_eq!(
                    r.values, expected,
                    "{name}: {path} path wrong at k={k} (n={n})"
                );
                r
            };
            let del = run(PathHint::Delegate);
            let rad = run(PathHint::Radix);
            let auto = run(PathHint::Auto);
            // Same data-aware resolution the pipeline seam performs, so the
            // twin-equality asserts below are exact.
            let auto_path = choose_path_sampled(data, k, &spec);

            // Auto is one of the two forced runs, exactly.
            let (twin_ms, twin_tx) = match auto_path {
                ChosenPath::Delegate => (del.time_ms, del.stats.total_transactions()),
                ChosenPath::Radix => (rad.time_ms, rad.stats.total_transactions()),
            };
            assert_eq!(
                auto.stats.total_transactions(),
                twin_tx,
                "{name}: Auto diverged from its resolved path at k={k}"
            );
            assert!(
                (auto.time_ms - twin_ms).abs() < 1e-9,
                "{name}: Auto makespan diverged from its resolved path at k={k}"
            );
            // Auto matches the better forced path at every grid point.
            let best_ms = del.time_ms.min(rad.time_ms);
            assert!(
                auto.time_ms <= best_ms * (1.0 + 1e-9),
                "{name}: Auto ({} ms) missed the better path ({best_ms} ms) at k={k}",
                auto.time_ms
            );
            // Strict win over delegate-forced at large k, both metrics.
            // Scoped to uniform: on low_entropy Auto == delegate is the
            // *correct* outcome, so a strict win there is unsatisfiable.
            if *name == "uniform" && k >= STRICT_WIN_K {
                assert!(
                    auto.time_ms < del.time_ms
                        && auto.stats.total_transactions() < del.stats.total_transactions(),
                    "{name}: Auto must strictly beat delegate at k={k} \
                     (auto {} ms / {} tx, delegate {} ms / {} tx)",
                    auto.time_ms,
                    auto.stats.total_transactions(),
                    del.time_ms,
                    del.stats.total_transactions()
                );
            }

            cells.push(Cell {
                dataset: name,
                k,
                delegate_ms: del.time_ms,
                delegate_tx: del.stats.total_transactions(),
                radix_ms: rad.time_ms,
                radix_tx: rad.stats.total_transactions(),
                auto_ms: auto.time_ms,
                auto_tx: auto.stats.total_transactions(),
                auto_path,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.dataset.to_string(),
                c.k.to_string(),
                fmt(c.delegate_ms),
                fmt(c.radix_ms),
                fmt(c.auto_ms),
                c.delegate_tx.to_string(),
                c.radix_tx.to_string(),
                c.auto_tx.to_string(),
                c.auto_path.name().to_string(),
                fmt((1.0 - c.auto_ms / c.delegate_ms) * 100.0),
            ]
        })
        .collect();
    emit(
        "large_k_sweep",
        &[
            "dataset",
            "k",
            "delegate_ms",
            "radix_ms",
            "auto_ms",
            "delegate_tx",
            "radix_tx",
            "auto_tx",
            "auto_path",
            "auto_win_over_delegate_pct",
        ],
        &rows,
    );

    // Baseline JSON for trajectory tracking, under the shared obs snapshot
    // schema. The committed baseline comes from the full (non-smoke) run.
    use drtopk_obs::{Json, Snapshot};
    let cell_objs: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("dataset", Json::str(c.dataset)),
                ("k", Json::Int(c.k as i64)),
                ("delegate_ms", Json::Num(c.delegate_ms)),
                ("radix_ms", Json::Num(c.radix_ms)),
                ("auto_ms", Json::Num(c.auto_ms)),
                ("delegate_tx", Json::Int(c.delegate_tx as i64)),
                ("radix_tx", Json::Int(c.radix_tx as i64)),
                ("auto_tx", Json::Int(c.auto_tx as i64)),
                ("auto_path", Json::str(c.auto_path.name())),
            ])
        })
        .collect();
    let json = Snapshot::new("large_k_sweep")
        .field("n", Json::Int(n as i64))
        .field("seed", Json::Int(seed() as i64))
        .field("smoke", Json::Bool(smoke))
        .field("cells", Json::Arr(cell_objs))
        .to_pretty_string();
    let path = results_dir().join("large_k_sweep.json");
    let mut file = std::fs::File::create(&path).expect("cannot create JSON file");
    file.write_all(json.as_bytes()).unwrap();
    println!("[written to {}]", path.display());
}
