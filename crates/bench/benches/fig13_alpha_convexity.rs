//! Figure 13: Dr. Top-k runtime (and its per-phase breakdown) as a function
//! of the subrange exponent α — the measured curve is convex, as the
//! Section 5.2 model predicts.

use drtopk_bench_harness::*;
use drtopk_core::{predicted_cost, DrTopKConfig};
use gpu_sim::DeviceSpec;
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let k = 1usize << (kmax_exp() / 2).max(3); // the paper uses k = 2^13 at |V| = 2^30
    let data = dataset(Distribution::Uniform, n);
    let device = device();
    let spec = DeviceSpec::v100s();
    let mut rows = Vec::new();
    for alpha in 2..(v_exp() - 1) {
        let config = DrTopKConfig {
            alpha: Some(alpha),
            ..DrTopKConfig::default()
        };
        let r = run_drtopk_checked(&device, &data, k, &config);
        let model = predicted_cost(alpha as f64, k, n, &spec);
        rows.push(vec![
            alpha.to_string(),
            fmt(r.breakdown.delegate_ms),
            fmt(r.breakdown.first_topk_ms),
            fmt(r.breakdown.concat_ms),
            fmt(r.breakdown.second_topk_ms),
            fmt(r.time_ms),
            fmt(model.total()),
        ]);
    }
    emit(
        "fig13_alpha_convexity",
        &[
            "alpha",
            "delegate_ms",
            "first_topk_ms",
            "concat_ms",
            "second_topk_ms",
            "total_ms",
            "model_total_cycles",
        ],
        &rows,
    );
}
