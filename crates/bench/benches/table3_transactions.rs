//! Table 3: global-memory load/store transactions of radix, bucket and
//! bitonic top-k with and without Dr. Top-k (UD dataset, k = 2^7).

use drtopk_bench_harness::*;
use drtopk_core::{DrTopKConfig, InnerAlgorithm};
use topk_baselines::BaselineAlgorithm;
use topk_datagen::Distribution;

fn main() {
    let n = default_n();
    let k = 1usize << 7;
    let data = dataset(Distribution::Uniform, n);
    let device = device();
    let mut rows = Vec::new();
    let pairs = [
        (BaselineAlgorithm::Radix, InnerAlgorithm::Radix),
        (BaselineAlgorithm::Bucket, InnerAlgorithm::Bucket),
        (BaselineAlgorithm::Bitonic, InnerAlgorithm::Bitonic),
    ];
    for (algo, inner) in pairs {
        let base = run_baseline_checked(&device, algo, &data, k);
        let cfg = DrTopKConfig {
            inner,
            ..DrTopKConfig::default()
        };
        let dr = run_drtopk_checked(&device, &data, k, &cfg);
        rows.push(vec![
            algo.name().into(),
            base.stats.global_load_transactions.to_string(),
            base.stats.global_store_transactions.to_string(),
            dr.stats.global_load_transactions.to_string(),
            dr.stats.global_store_transactions.to_string(),
            fmt(base.stats.global_load_transactions as f64
                / dr.stats.global_load_transactions.max(1) as f64),
            fmt(base.stats.global_store_transactions as f64
                / dr.stats.global_store_transactions.max(1) as f64),
        ]);
    }
    emit(
        "table3_transactions",
        &[
            "algorithm",
            "baseline_loads",
            "baseline_stores",
            "drtopk_loads",
            "drtopk_stores",
            "load_reduction",
            "store_reduction",
        ],
        &rows,
    );
}
