//! # drtopk-bench — figure/table regeneration harness
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! bench target under `benches/` (run with `cargo bench -p drtopk-bench` or
//! `cargo bench --workspace`); each target prints the same rows/series the
//! paper reports and writes a CSV copy under `bench_results/`.
//!
//! The paper's experiments use `|V| = 2^30 … 2^33` on V100S GPUs; simulating
//! those sizes on a CPU is possible but slow, so the harness defaults to a
//! scaled-down `|V|` (2^22) that preserves every trend. Environment
//! variables adjust the scale:
//!
//! | variable | effect |
//! |---|---|
//! | `DRTOPK_V_EXP` | log2 of the default input size (default 22) |
//! | `DRTOPK_KMAX_EXP` | log2 of the largest k in sweeps (default `V_EXP − 6`) |
//! | `DRTOPK_FULL=1` | larger run: `|V| = 2^26` (still CPU-simulated; expect minutes per figure) |
//! | `DRTOPK_SEED` | dataset seed (default 42) |

use std::io::Write as _;
use std::path::PathBuf;

use drtopk_core::{dr_topk_with_stats, DrTopKConfig, DrTopKResult};
use gpu_sim::{Device, DeviceSpec};
use topk_baselines::{BaselineAlgorithm, TopKResult};
use topk_datagen::Distribution;

/// Default dataset seed (override with `DRTOPK_SEED`).
pub fn seed() -> u64 {
    std::env::var("DRTOPK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// log2 of the default input-vector size.
pub fn v_exp() -> u32 {
    if std::env::var("DRTOPK_FULL").is_ok_and(|v| v == "1") {
        return 26;
    }
    std::env::var("DRTOPK_V_EXP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(22)
}

/// The default input-vector size `|V|`.
pub fn default_n() -> usize {
    1usize << v_exp()
}

/// log2 of the largest k used by k-sweeps.
pub fn kmax_exp() -> u32 {
    std::env::var("DRTOPK_KMAX_EXP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| v_exp().saturating_sub(6).max(4))
}

/// The k sweep used by most figures: powers of two `2^0 .. 2^kmax`, stepping
/// by `step` exponents.
pub fn k_sweep(step: u32) -> Vec<usize> {
    (0..=kmax_exp())
        .step_by(step.max(1) as usize)
        .map(|e| 1usize << e)
        .collect()
}

/// A fresh V100S device simulated with all host cores.
pub fn device() -> Device {
    Device::new(DeviceSpec::v100s())
}

/// Where CSV outputs are written (`<workspace>/bench_results`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DRTOPK_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results"));
    std::fs::create_dir_all(&dir).expect("cannot create bench_results directory");
    dir
}

/// Print a table to stdout and write it as `<name>.csv` under
/// [`results_dir`].
pub fn emit(name: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {name} ==");
    println!("{}", header.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
    let path = results_dir().join(format!("{name}.csv"));
    let mut file = std::fs::File::create(&path).expect("cannot create CSV file");
    writeln!(file, "{}", header.join(",")).unwrap();
    for row in rows {
        writeln!(file, "{}", row.join(",")).unwrap();
    }
    println!("[written to {}]", path.display());
}

/// Format a float with 4 significant decimals for CSV output.
pub fn fmt(x: f64) -> String {
    format!("{x:.4}")
}

/// Run one Dr. Top-k configuration and sanity-check the result against the
/// CPU reference (the harness never reports numbers from a wrong answer).
pub fn run_drtopk_checked(
    device: &Device,
    data: &[u32],
    k: usize,
    config: &DrTopKConfig,
) -> DrTopKResult {
    let result = dr_topk_with_stats(device, data, k, config);
    debug_assert_eq!(
        result.values,
        topk_baselines::reference_topk(data, k),
        "Dr. Top-k produced a wrong answer"
    );
    result
}

/// Run one baseline and sanity-check the result.
pub fn run_baseline_checked(
    device: &Device,
    algo: BaselineAlgorithm,
    data: &[u32],
    k: usize,
) -> TopKResult {
    let result = algo.run(device, data, k);
    debug_assert_eq!(
        result.values,
        topk_baselines::reference_topk(data, k),
        "baseline {algo} produced a wrong answer"
    );
    result
}

/// The per-phase breakdown row used by Figures 6, 7, 10 and 15.
pub fn breakdown_row(k: usize, r: &DrTopKResult) -> Vec<String> {
    vec![
        k.to_string(),
        fmt(r.breakdown.delegate_ms),
        fmt(r.breakdown.first_topk_ms),
        fmt(r.breakdown.concat_ms),
        fmt(r.breakdown.second_topk_ms),
        fmt(r.time_ms),
        r.workload.delegate_vector_len.to_string(),
        r.workload.concatenated_len.to_string(),
    ]
}

/// Header matching [`breakdown_row`].
pub const BREAKDOWN_HEADER: [&str; 8] = [
    "k",
    "delegate_ms",
    "first_topk_ms",
    "concat_ms",
    "second_topk_ms",
    "total_ms",
    "delegate_len",
    "concat_len",
];

/// Generate the dataset for a distribution at the given size.
pub fn dataset(dist: Distribution, n: usize) -> Vec<u32> {
    topk_datagen::generate(dist, n, seed())
}

/// Run a full breakdown sweep (one row per k) for a fixed configuration —
/// the shared engine behind Figures 6, 7, 10 and 15.
pub fn breakdown_sweep(
    name: &str,
    config_for_k: impl Fn(usize) -> DrTopKConfig,
    dist: Distribution,
) {
    let n = default_n();
    let data = dataset(dist, n);
    let device = device();
    let mut rows = Vec::new();
    for k in k_sweep(2) {
        let config = config_for_k(k);
        let r = run_drtopk_checked(&device, &data, k, &config);
        rows.push(breakdown_row(k, &r));
    }
    emit(name, &BREAKDOWN_HEADER, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_are_sane() {
        assert!(v_exp() >= 16);
        assert!(default_n() >= 1 << 16);
        assert!(kmax_exp() >= 4);
        let ks = k_sweep(2);
        assert_eq!(ks[0], 1);
        assert!(ks.len() >= 3);
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn emit_writes_csv() {
        let dir = results_dir();
        emit(
            "unit_test_emit",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let path = dir.join("unit_test_emit.csv");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checked_runners_agree_with_reference() {
        let data = topk_datagen::uniform(1 << 12, 1);
        let dev = device();
        let r = run_drtopk_checked(&dev, &data, 32, &DrTopKConfig::default());
        assert_eq!(r.values.len(), 32);
        let b = run_baseline_checked(&dev, BaselineAlgorithm::Radix, &data, 32);
        assert_eq!(b.values, r.values);
    }
}
