//! # Dr. Top-k — delegate-centric top-k (SC '21) reproduction
//!
//! This facade crate re-exports every sub-crate of the workspace so that a
//! downstream user can depend on a single crate:
//!
//! * [`sim`] — the GPU execution-model substrate ([`gpu_sim`]): devices,
//!   warps, memory-transaction accounting and the timing model.
//! * [`core`] — the paper's contribution ([`drtopk_core`]): delegate vector
//!   construction, β delegates, delegate-filtered concatenation, α tuning,
//!   the flag-based in-place radix top-k, distributed Dr. Top-k, and — going
//!   beyond the paper — the recall-targeted approximate mode and the
//!   row-wise matrix top-k (`topk_rows`) for MoE-gating-shaped workloads.
//! * [`baselines`] — the state-of-the-art algorithms Dr. Top-k assists and
//!   is compared with ([`topk_baselines`]): radix, bucket, bitonic,
//!   sort-and-choose and a CPU priority-queue reference.
//! * [`datagen`] — the synthetic (UD/ND/CD) and real-world-proxy datasets
//!   used by the paper's evaluation ([`topk_datagen`]).
//! * [`bmw`] — the Block-Max WAND information-retrieval baseline used in
//!   Figure 24 ([`bmw_baseline`]).
//! * [`engine`] — the batched multi-query serving engine
//!   ([`drtopk_engine`]): planner, scheduler and plan cache that fuse
//!   same-corpus queries into shared delegate passes and shard
//!   over-capacity corpora across the cluster.
//! * [`obs`] — observability ([`drtopk_obs`]): stage-graph tracing with
//!   Chrome Trace (Perfetto) export, the lock-free metrics registry behind
//!   `EngineReport::metrics`, and the shared versioned JSON snapshot
//!   schema (see `docs/OBSERVABILITY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use drtopk::prelude::*;
//!
//! // 1M uniformly distributed u32 values.
//! let data = topk_datagen::uniform(1 << 20, 0x5eed);
//! let device = Device::new(DeviceSpec::v100s());
//!
//! // Dr. Top-k assisted radix top-k with automatic α / β configuration.
//! let config = DrTopKConfig::auto(data.len(), 1024);
//! let result = dr_topk(&device, &data, 1024, &config);
//!
//! // The result is exactly the 1024 largest elements.
//! let mut expected = data.clone();
//! expected.sort_unstable_by(|a, b| b.cmp(a));
//! expected.truncate(1024);
//! let mut got = result.values.clone();
//! got.sort_unstable_by(|a, b| b.cmp(a));
//! assert_eq!(got, expected);
//! ```

pub use bmw_baseline as bmw;
pub use drtopk_core as core;
pub use drtopk_engine as engine;
pub use drtopk_obs as obs;
pub use gpu_sim as sim;
pub use topk_baselines as baselines;
pub use topk_datagen as datagen;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use bmw_baseline::{BmwIndex, BmwStats};
    pub use drtopk_core::{
        dr_topk, dr_topk_approx, dr_topk_min, dr_topk_with_stats, measured_recall, topk_rows,
        topk_rows_min, DrTopKConfig, DrTopKResult, InnerAlgorithm, Mode, RecallTarget, RowK,
        RowMatrix, RowTopKResult,
    };
    pub use drtopk_engine::{QueryBatch, RowQuery, TopKEngine};
    pub use drtopk_obs::{MetricName, MetricsRegistry, TraceRecorder, TraceSink};
    pub use gpu_sim::{Device, DeviceSpec, KernelStats};
    pub use topk_baselines::{
        bitonic_topk, bucket_topk, priority_queue_topk, radix_topk, sort_and_choose_topk, Desc,
        TopKKey,
    };
    pub use topk_datagen::{self, Distribution};
}
