//! Differential conformance suite for the row-wise matrix top-k
//! ([`drtopk::core::topk_rows`]): every row of a `rows × cols` matrix must
//! be **bit-identical** to an independent per-row `dr_topk` /
//! `dr_topk_min` call — across all six key types, both directions,
//! NaN-laden float rows, uniform and per-row `k` (with `k = 0`, `k = cols`
//! and `k > cols` mixed into one matrix), and both the exact and the
//! recall-targeted approximate modes. The fused row-block plan is pinned
//! structurally too: delegate passes scale with blocks, never with rows,
//! and the fused plan moves measurably fewer modeled global-memory
//! transactions than independent per-row runs.
//!
//! The whole suite runs under the executor selected by
//! `DRTOPK_TEST_EXECUTOR` (CI runs it under both `serial` and `threaded`),
//! and the executor matrix is additionally pinned in-process: byte-equal
//! [`deterministic_summary`](drtopk::core::StageReport::deterministic_summary)
//! strings for the same row graph under both executors.

mod common;

use common::{bits, device, test_executor};
use drtopk::core::{
    dr_topk, dr_topk_min, topk_rows_explore, topk_rows_on, DrTopKConfig, Executor, ExploreBudget,
};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;
use proptest::prelude::*;

fn pool(devices: usize) -> GpuCluster {
    GpuCluster::homogeneous(devices, DeviceSpec::v100s())
}

/// The differential oracle: `topk_rows` over a 2-device pool (under the
/// suite's executor) against one independent `dr_topk` / `dr_topk_min`
/// call per row, compared through order-preserving bit images so NaNs are
/// concrete multiset elements.
fn assert_rows_match_per_row<K: TopKKey>(
    data: &[K],
    rows: usize,
    cols: usize,
    ks: &RowK,
    largest: bool,
    cfg: &DrTopKConfig,
) {
    let c = pool(2);
    let devices: Vec<&Device> = c.devices().iter().collect();
    let matrix = RowMatrix::new(data, rows, cols);
    let got = if largest {
        topk_rows_on(&devices, matrix, ks, cfg, None, test_executor())
    } else {
        topk_rows_on(&devices, matrix.as_desc(), ks, cfg, None, test_executor()).into_native()
    };
    assert_eq!(got.rows.len(), rows);
    // One fused pass per block per path kind at most — never one per row.
    assert!(
        got.delegate_passes <= got.num_blocks,
        "{} passes for {} blocks",
        got.delegate_passes,
        got.num_blocks
    );
    let dev = device();
    for r in 0..rows {
        let k = ks.get(r);
        let single = if largest {
            dr_topk(&dev, matrix.row(r), k, cfg)
        } else {
            dr_topk_min(&dev, matrix.row(r), k, cfg)
        };
        assert_eq!(
            bits(&got.rows[r].values),
            bits(&single.values),
            "row {r} k={k} largest={largest}"
        );
        assert_eq!(
            got.rows[r].kth_value.to_bits(),
            single.kth_value.to_bits(),
            "row {r} threshold"
        );
    }
}

/// A per-row k vector that forces every degenerate shape into one matrix:
/// `k = 0` (skipped row), `k = cols` (full-sort fallback), `k > cols`
/// (clamped), and an ordinary delegate-path k.
fn degenerate_ks(rows: usize, cols: usize, ordinary: usize) -> RowK {
    RowK::PerRow(
        (0..rows)
            .map(|r| match r % 4 {
                0 => 0,
                1 => cols,
                2 => cols + 7,
                _ => ordinary.clamp(1, cols.max(1)),
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `topk_rows` is bit-identical to per-row `dr_topk` / `dr_topk_min`
    /// for all six key types, both directions, uniform and degenerate
    /// per-row k, in both the exact and the approximate mode. The float
    /// matrices are salted with NaNs of both signs.
    #[test]
    fn rows_are_bit_identical_to_per_row_runs(
        raw in proptest::collection::vec(any::<u32>(), 512..2048),
        rows in 2usize..6,
        k_frac in 0.0f64..1.0,
        largest in any::<bool>(),
        per_row_k in any::<bool>(),
        approx in any::<bool>(),
    ) {
        let cols = raw.len() / rows;
        let data = &raw[..rows * cols];
        let k = ((cols as f64 * k_frac) as usize).min(cols);
        let ks = if per_row_k {
            degenerate_ks(rows, cols, k)
        } else {
            RowK::Uniform(k)
        };
        let cfg = if approx { DrTopKConfig::approx(0.9) } else { DrTopKConfig::default() };

        assert_rows_match_per_row::<u32>(data, rows, cols, &ks, largest, &cfg);
        let as_u64: Vec<u64> = data.iter().map(|&x| (x as u64) << 17 | 0x9).collect();
        assert_rows_match_per_row::<u64>(&as_u64, rows, cols, &ks, largest, &cfg);
        let as_i32: Vec<i32> = data.iter().map(|&x| x as i32).collect();
        assert_rows_match_per_row::<i32>(&as_i32, rows, cols, &ks, largest, &cfg);
        let as_i64: Vec<i64> = data.iter().map(|&x| x as i64 - (1 << 35)).collect();
        assert_rows_match_per_row::<i64>(&as_i64, rows, cols, &ks, largest, &cfg);
        // Raw bit reinterpretation already injects NaN/∞/subnormal keys;
        // salt every row with explicit NaNs of both signs on top.
        let mut as_f32: Vec<f32> = data.iter().map(|&x| f32::from_bits(x)).collect();
        for r in 0..rows {
            as_f32[r * cols] = f32::NAN;
            as_f32[r * cols + cols / 2] = -f32::NAN;
        }
        assert_rows_match_per_row::<f32>(&as_f32, rows, cols, &ks, largest, &cfg);
        let mut as_f64: Vec<f64> = data
            .iter()
            .map(|&x| f64::from_bits((x as u64) << 32 | 0x7FF5))
            .collect();
        for r in 0..rows {
            as_f64[r * cols + 1] = f64::NAN;
            as_f64[r * cols + cols - 1] = -f64::NAN;
        }
        assert_rows_match_per_row::<f64>(&as_f64, rows, cols, &ks, largest, &cfg);
    }
}

/// The pinned fusion proof: R rows on D devices run at most
/// `D · ⌈R / rows_per_block⌉`-many delegate passes — one fused pass per
/// row-block, never one per row — and the pass count is visible both in
/// the result metadata and as `fused pass` stages in the schedule.
#[test]
fn delegate_passes_scale_with_blocks_not_rows() {
    let devices_n = 2;
    let rows = 12;
    let cols = 1 << 12;
    let rpb = 3; // 4 blocks of 3 rows
    let c = pool(devices_n);
    let devices: Vec<&Device> = c.devices().iter().collect();
    let data = topk_datagen::uniform(rows * cols, 0x5eed);
    let matrix = RowMatrix::new(&data, rows, cols);
    let got = topk_rows_on(
        &devices,
        matrix,
        &RowK::Uniform(32),
        &DrTopKConfig::default(),
        Some(rpb),
        test_executor(),
    );
    let blocks = rows.div_ceil(rpb);
    assert_eq!(got.num_blocks, blocks);
    assert_eq!(got.rows_per_block, rpb);
    assert!(
        got.delegate_passes <= devices_n * blocks && got.delegate_passes < rows,
        "{} passes for {rows} rows in {blocks} blocks on {devices_n} devices",
        got.delegate_passes
    );
    let pass_stages = got
        .stages
        .stages
        .iter()
        .filter(|s| s.label.contains("fused pass"))
        .count();
    assert_eq!(pass_stages, got.delegate_passes, "schedule agrees");
    // Every row still answers exactly.
    for r in 0..rows {
        assert_eq!(
            got.rows[r].values,
            topk_baselines::reference_topk(matrix.row(r), 32)
        );
    }
}

/// The fused plan is cheaper in the memory model, not just in pass count:
/// a fallback-heavy matrix (k ≈ cols/2 forces the inner multi-pass
/// algorithm per independent run) moves measurably fewer modeled
/// global-memory transactions through `topk_rows` than the same rows run
/// as R independent `dr_topk` calls.
#[test]
fn fused_rows_move_fewer_transactions_than_independent_runs() {
    let rows = 8;
    let cols = 1 << 12;
    let k = cols / 2;
    let c = pool(2);
    let devices: Vec<&Device> = c.devices().iter().collect();
    let data = topk_datagen::customized(rows * cols, 21);
    let matrix = RowMatrix::new(&data, rows, cols);
    let cfg = DrTopKConfig::default();
    let fused = topk_rows_on(
        &devices,
        matrix,
        &RowK::Uniform(k),
        &cfg,
        None,
        test_executor(),
    );
    let dev = device();
    let mut independent = 0u64;
    for r in 0..rows {
        let single = dr_topk(&dev, matrix.row(r), k, &cfg);
        assert_eq!(fused.rows[r].values, single.values, "row {r}");
        independent += single.stats.total_transactions();
    }
    let fused_txn = fused.stats.total_transactions();
    assert!(
        fused_txn < independent,
        "fused {fused_txn} transactions must undercut {independent} independent"
    );
}

/// Executor matrix, pinned in-process: the same row graph under
/// `Executor::Serial` and `Executor::Threaded` yields byte-identical
/// deterministic schedule summaries and bit-identical winners.
#[test]
fn serial_and_threaded_row_graphs_are_byte_identical() {
    let rows = 6;
    let cols = 1 << 11;
    let c = pool(2);
    let devices: Vec<&Device> = c.devices().iter().collect();
    let data = topk_datagen::normal(rows * cols, 13);
    let matrix = RowMatrix::new(&data, rows, cols);
    // Mixed paths in one graph: skip, delegate, fallback, clamped.
    let ks = RowK::PerRow(vec![0, 16, cols / 2, cols, cols + 9, 16]);
    let cfg = DrTopKConfig::default();
    let serial = topk_rows_on(&devices, matrix, &ks, &cfg, Some(2), Executor::Serial);
    let threaded = topk_rows_on(&devices, matrix, &ks, &cfg, Some(2), Executor::Threaded);
    assert_eq!(
        serial.stages.deterministic_summary(),
        threaded.stages.deterministic_summary(),
        "modeled schedule must not depend on the executor"
    );
    for r in 0..rows {
        assert_eq!(
            bits(&serial.rows[r].values),
            bits(&threaded.rows[r].values),
            "row {r}"
        );
    }
    assert_eq!(serial.breakdown, threaded.breakdown);
    assert_eq!(serial.stats, threaded.stats);
}

/// Small exhaustive interleaving check: every dispatch order the
/// per-resource workers could take for a two-block row graph produces the
/// same deterministic summary and the same per-row winners.
#[test]
fn explore_exhausts_row_graph_interleavings() {
    let rows = 4;
    let cols = 1 << 10;
    let c = pool(2);
    let devices: Vec<&Device> = c.devices().iter().collect();
    let data = topk_datagen::uniform(rows * cols, 37);
    let matrix = RowMatrix::new(&data, rows, cols);
    let (result, outcome) = topk_rows_explore(
        &devices,
        matrix,
        &RowK::PerRow(vec![8, 0, cols / 2, 8]),
        &DrTopKConfig::default(),
        Some(2),
        ExploreBudget::default(),
    )
    .expect("row graphs must be schedule-invariant");
    assert!(outcome.exhaustive, "two blocks must enumerate exhaustively");
    assert!(outcome.schedules_run >= 2);
    for r in 0..rows {
        let k = [8, 0, cols / 2, 8][r];
        assert_eq!(
            result.rows[r].values,
            topk_baselines::reference_topk(matrix.row(r), k),
            "row {r}"
        );
    }
}
