//! Edge-case contract tests: `k == 0`, `k == |V|`, `k > |V|` and empty
//! input, across `dr_topk`, the distributed pipeline and every baseline.
//!
//! The workspace-wide convention these tests pin down:
//!
//! * **top-k entry points** (`dr_topk`, `distributed_dr_topk`, every
//!   `*_topk` baseline, `reference_topk`) are total: `k` is clamped to
//!   `data.len()`, so `k == 0` and empty input return an empty result and
//!   `k > |V|` degrades to a full descending sort;
//! * **k-th-selection primitives** (`radix_select_kth`,
//!   `bucket_select_kth`, `flag_radix_select_kth`, `reference_kth`) have no
//!   meaningful answer outside `1..=|V|` and are *documented to panic*
//!   there — the `should_panic` tests below freeze that contract.

use drtopk::prelude::*;
use drtopk_core::{distributed_dr_topk, flag_radix_topk, FlagSelectConfig};
use gpu_sim::GpuCluster;
use topk_baselines::{
    parallel_priority_queue_topk, reference_kth, reference_topk, BitonicConfig, BucketConfig,
    RadixConfig,
};

fn device() -> Device {
    Device::with_host_threads(DeviceSpec::v100s(), 2)
}

/// Every total top-k in the workspace, normalized to `(name, values)`.
fn all_topk_values(device: &Device, data: &[u32], k: usize) -> Vec<(&'static str, Vec<u32>)> {
    vec![
        (
            "dr_topk",
            dr_topk(device, data, k, &DrTopKConfig::default()).values,
        ),
        (
            "radix_topk",
            radix_topk(device, data, k, &RadixConfig::default()).values,
        ),
        (
            "bucket_topk",
            bucket_topk(device, data, k, &BucketConfig::default()).values,
        ),
        (
            "bitonic_topk",
            bitonic_topk(device, data, k, &BitonicConfig::default()).values,
        ),
        (
            "sort_and_choose_topk",
            sort_and_choose_topk(device, data, k).values,
        ),
        ("flag_radix_topk", flag_radix_topk(device, data, k).values),
        ("priority_queue_topk", priority_queue_topk(data, k).values),
        (
            "parallel_priority_queue_topk",
            parallel_priority_queue_topk(data, k, 2).values,
        ),
    ]
}

#[test]
fn k_zero_returns_empty_everywhere() {
    let device = device();
    let data: Vec<u32> = (0..512u32).rev().collect();
    for (name, values) in all_topk_values(&device, &data, 0) {
        assert!(values.is_empty(), "{name} must return nothing for k = 0");
    }
    assert!(reference_topk(&data, 0).is_empty());
}

#[test]
fn empty_input_returns_empty_everywhere() {
    let device = device();
    for k in [0usize, 1, 16] {
        for (name, values) in all_topk_values(&device, &[], k) {
            assert!(values.is_empty(), "{name} must return nothing for |V| = 0");
        }
    }
}

#[test]
fn k_equal_to_len_is_a_full_descending_sort() {
    let device = device();
    let data = topk_datagen::uniform(2048, 99);
    let mut expected = data.clone();
    expected.sort_unstable_by(|a, b| b.cmp(a));
    for (name, values) in all_topk_values(&device, &data, data.len()) {
        assert_eq!(values, expected, "{name} at k = |V|");
    }
}

#[test]
fn k_larger_than_len_clamps_to_len() {
    let device = device();
    let data: Vec<u32> = vec![5, 1, 4, 1, 5, 9, 2, 6];
    let mut expected = data.clone();
    expected.sort_unstable_by(|a, b| b.cmp(a));
    for (name, values) in all_topk_values(&device, &data, data.len() * 10) {
        assert_eq!(values, expected, "{name} must clamp k to |V|");
    }
}

#[test]
fn single_element_input_works_for_any_k() {
    let device = device();
    for k in [1usize, 2, 1000] {
        for (name, values) in all_topk_values(&device, &[7], k) {
            assert_eq!(values, vec![7], "{name} on a one-element vector, k={k}");
        }
    }
}

#[test]
fn dr_topk_k_equal_len_under_every_config_knob() {
    // At k = |V| nothing can be pruned: every subrange must survive the
    // first top-k and the concatenated vector is the whole input.
    let device = device();
    let data = topk_datagen::uniform(1 << 12, 1234);
    let mut expected = data.clone();
    expected.sort_unstable_by(|a, b| b.cmp(a));
    for filtering in [false, true] {
        for beta in [1usize, 2, 4] {
            let config = DrTopKConfig {
                alpha: Some(5),
                beta,
                filtering,
                ..DrTopKConfig::default()
            };
            let got = dr_topk(&device, &data, data.len(), &config);
            assert_eq!(got.values, expected, "beta={beta} filtering={filtering}");
        }
    }
}

#[test]
fn distributed_edges_match_single_device() {
    let cluster = GpuCluster::homogeneous(4, DeviceSpec::v100s());
    let data = topk_datagen::uniform(1 << 12, 77);
    let config = DrTopKConfig::default();
    assert!(distributed_dr_topk(&cluster, &data, 0, &config)
        .values
        .is_empty());
    assert!(distributed_dr_topk::<u32>(&cluster, &[], 8, &config)
        .values
        .is_empty());
    let full = distributed_dr_topk(&cluster, &data, data.len() + 5, &config);
    assert_eq!(full.values, reference_topk(&data, data.len()));
}

// ---- selection primitives: out-of-range k is a documented panic ----

#[test]
#[should_panic(expected = "k must be in 1..=|V|")]
fn radix_select_kth_panics_on_k_zero() {
    let device = device();
    topk_baselines::radix_select_kth(&device, &[1, 2, 3], 0, &RadixConfig::default());
}

#[test]
#[should_panic(expected = "k must be in 1..=|V|")]
fn radix_select_kth_panics_on_k_beyond_len() {
    let device = device();
    topk_baselines::radix_select_kth(&device, &[1, 2, 3], 4, &RadixConfig::default());
}

#[test]
#[should_panic(expected = "k must be in 1..=|V|")]
fn bucket_select_kth_panics_on_k_zero() {
    let device = device();
    topk_baselines::bucket_select_kth(&device, &[1, 2, 3], 0, &BucketConfig::default());
}

#[test]
#[should_panic(expected = "k out of range")]
fn reference_kth_panics_on_empty_input() {
    reference_kth::<u32>(&[], 1);
}

#[test]
#[should_panic(expected = "k must be in 1..=|V|")]
fn flag_radix_select_kth_panics_on_k_zero() {
    let device = device();
    drtopk_core::flag_radix_select_kth(&device, &[1, 2, 3], 0, &FlagSelectConfig::default());
}
