//! Cross-crate integration tests: every top-k implementation in the
//! workspace must return exactly the same multiset of values as the CPU
//! reference, across distributions, k values and configurations.

mod common;

use common::device;
use drtopk::core::{dr_topk, DrTopKConfig, InnerAlgorithm};
use drtopk::prelude::*;
use topk_baselines::{reference_topk, BaselineAlgorithm};
use topk_datagen::Distribution;

#[test]
fn every_algorithm_agrees_on_every_distribution() {
    let device = device();
    let n = 1 << 14;
    for dist in Distribution::SYNTHETIC
        .iter()
        .chain(Distribution::REAL_WORLD.iter())
    {
        let data = topk_datagen::generate(*dist, n, 11);
        for &k in &[1usize, 7, 128, 2048] {
            let expected = reference_topk(&data, k);
            for algo in [
                BaselineAlgorithm::Radix,
                BaselineAlgorithm::Bucket,
                BaselineAlgorithm::Bitonic,
                BaselineAlgorithm::SortAndChoose,
            ] {
                assert_eq!(
                    algo.run(&device, &data, k).values,
                    expected,
                    "{algo} on {dist} k={k}"
                );
            }
            assert_eq!(
                priority_queue_topk(&data, k).values,
                expected,
                "priority queue on {dist} k={k}"
            );
            let dr = dr_topk(&device, &data, k, &DrTopKConfig::default());
            assert_eq!(dr.values, expected, "Dr. Top-k on {dist} k={k}");
        }
    }
}

#[test]
fn drtopk_configuration_matrix_is_exact() {
    let device = device();
    let data = topk_datagen::customized(1 << 15, 3);
    let k = 777;
    let expected = reference_topk(&data, k);
    for beta in [1usize, 2, 3] {
        for filtering in [false, true] {
            for alpha in [None, Some(5u32), Some(9)] {
                for inner in InnerAlgorithm::ALL {
                    let config = DrTopKConfig {
                        alpha,
                        beta,
                        filtering,
                        inner,
                        ..DrTopKConfig::default()
                    };
                    let got = dr_topk(&device, &data, k, &config);
                    assert_eq!(
                        got.values, expected,
                        "beta={beta} filtering={filtering} alpha={alpha:?} inner={inner}"
                    );
                }
            }
        }
    }
}

#[test]
fn facade_prelude_quickstart_flow_works() {
    // mirrors the README quickstart
    let data = topk_datagen::uniform(1 << 16, 0x5eed);
    let device = Device::new(DeviceSpec::v100s());
    let config = DrTopKConfig::auto(data.len(), 1024);
    let result = dr_topk(&device, &data, 1024, &config);
    assert_eq!(result.values, reference_topk(&data, 1024));
    assert!(result.time_ms > 0.0);
    assert!(result.workload.workload_fraction() < 0.5);
}

#[test]
fn adversarial_inputs() {
    let device = device();
    // all-equal, already sorted ascending/descending, single element,
    // extreme values, heavy ties around the threshold
    let cases: Vec<Vec<u32>> = vec![
        vec![42; 5000],
        (0..5000u32).collect(),
        (0..5000u32).rev().collect(),
        vec![7],
        vec![u32::MAX; 100],
        vec![0; 100],
        {
            let mut v = vec![1000u32; 3000];
            v.extend(vec![2000u32; 64]);
            v
        },
    ];
    for data in cases {
        for &k in &[1usize, 2, 63, 64, 65] {
            let k = k.min(data.len());
            let expected = reference_topk(&data, k);
            let got = dr_topk(&device, &data, k, &DrTopKConfig::default());
            assert_eq!(got.values, expected, "|V|={} k={k}", data.len());
            let got = bitonic_topk(&device, &data, k, &topk_baselines::BitonicConfig::default());
            assert_eq!(got.values, expected);
        }
    }
}

#[test]
fn results_report_consistent_metadata() {
    let device = device();
    let data = topk_datagen::uniform(1 << 15, 5);
    let k = 256;
    let r = dr_topk(&device, &data, k, &DrTopKConfig::default());
    assert_eq!(r.values.len(), k);
    assert_eq!(r.kth_value, r.values[k - 1]);
    assert!(
        r.values.windows(2).all(|w| w[0] >= w[1]),
        "descending order"
    );
    assert_eq!(r.workload.input_len, data.len());
    assert!(r.workload.delegate_vector_len < data.len());
    assert!((r.breakdown.total_ms() - r.time_ms).abs() < 1e-9);
    assert!(r.stats.total_transactions() > 0);
}
