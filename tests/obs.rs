//! Observability integration suite: histogram quantiles against exact
//! nearest-rank quantiles (property-based), trace spans against executed
//! stage reports bit for bit, deterministic trace byte-identity across
//! executors, and the engine's metrics snapshot end to end.

use std::sync::Arc;

use drtopk::core::{
    distributed_dr_topk_observed, DrTopKConfig, Executor, ReloadSchedule, StageReport,
};
use drtopk::engine::{QueryBatch, TopKEngine};
use drtopk::obs::{validate_chrome_trace, Histogram, Json, MetricName, TraceRecorder};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;
use proptest::prelude::*;

/// Exact nearest-rank quantile over an ascending-sorted sample:
/// the ⌈q·n⌉-th smallest value.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// The log-bucketed histogram (γ = 2^(1/8)) places its estimate at the
/// geometric midpoint of the bucket holding the nearest-rank sample, so
/// the relative error is bounded by √γ − 1 ≈ 4.4%.
fn close(estimate: f64, exact: f64) -> bool {
    (estimate - exact).abs() <= 0.05 * exact.abs() + 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles track exact nearest-rank quantiles within the
    /// bucket resolution, for arbitrary positive samples.
    #[test]
    fn histogram_quantiles_match_exact_nearest_rank(
        samples in proptest::collection::vec(1e-3f64..1e4, 1..400),
        qs in proptest::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &qs {
            let est = hist.quantile(q).expect("non-empty histogram");
            let exact = exact_quantile(&sorted, q);
            prop_assert!(
                close(est, exact),
                "q={q}: histogram {est} vs exact {exact} over {} samples",
                samples.len()
            );
        }
        let s = hist.summary();
        prop_assert!(close(s.p50_ms, exact_quantile(&sorted, 0.50)));
        prop_assert!(close(s.p95_ms, exact_quantile(&sorted, 0.95)));
        prop_assert!(close(s.p99_ms, exact_quantile(&sorted, 0.99)));
    }

    /// Duplicate-heavy samples (few distinct values, many repeats) are the
    /// histogram's best case: every quantile lands exactly on a recorded
    /// value thanks to the [min, max] clamp and per-bucket min/max.
    #[test]
    fn duplicate_heavy_samples_stay_within_resolution(
        value in 0.1f64..100.0,
        dupes in 1usize..200,
        q in 0.0f64..1.0,
    ) {
        let hist = Histogram::new();
        for _ in 0..dupes {
            hist.record(value);
        }
        // all samples equal: the clamp pins every quantile to the value
        let est = hist.quantile(q).unwrap();
        prop_assert!((est - value).abs() < 1e-12, "q={q}: {est} != {value}");
    }
}

#[test]
fn empty_and_single_sample_quantiles() {
    let hist = Histogram::new();
    assert_eq!(hist.quantile(0.5), None, "empty histogram has no quantiles");
    let s = hist.summary();
    assert_eq!(s.count, 0);
    assert_eq!(s.p50_ms, 0.0);

    hist.record(3.75);
    // one sample: the [min, max] clamp makes every quantile exact
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(hist.quantile(q), Some(3.75), "q={q}");
    }
}

const DEVICES: usize = 4;
const K: usize = 64;

fn cluster(capacity: usize) -> GpuCluster {
    let c = GpuCluster::homogeneous(DEVICES, DeviceSpec::v100s());
    for d in c.devices() {
        d.set_capacity_elems(capacity);
    }
    c
}

/// A traced 4-device double-buffered out-of-core run: under each executor
/// the recorded spans must mirror the returned [`StageReport`] bit for bit
/// (modeled intervals, kinds, dependency lists), the report must pass the
/// stage-graph dependency verifier, and the two deterministic Chrome
/// traces must be byte-identical.
#[test]
fn trace_spans_match_stage_report_bit_for_bit() {
    let capacity = 1usize << 13;
    let data = topk_datagen::uniform(capacity * 4 * DEVICES, 0x7ace);
    let cfg = DrTopKConfig::default();
    let expected = topk_baselines::reference_topk(&data, K);

    let mut traces: Vec<String> = Vec::new();
    let mut reports: Vec<StageReport> = Vec::new();
    for executor in [Executor::Serial, Executor::Threaded] {
        let rec = TraceRecorder::deterministic();
        let d = distributed_dr_topk_observed(
            &cluster(capacity),
            &data,
            K,
            &cfg,
            ReloadSchedule::DoubleBuffered,
            executor,
            &rec,
        );
        assert_eq!(d.values, expected, "{executor:?} must be exact");
        assert!(
            d.stages.verify().is_empty(),
            "{executor:?} report failed dependency verification"
        );

        let spans = rec.spans();
        assert_eq!(spans.len(), d.stages.stages.len());
        for (i, (span, stage)) in spans.iter().zip(&d.stages.stages).enumerate() {
            assert_eq!(span.seq, i);
            assert_eq!(
                span.start_ms.to_bits(),
                stage.start_ms.to_bits(),
                "span {i}"
            );
            assert_eq!(span.end_ms.to_bits(), stage.end_ms.to_bits(), "span {i}");
            assert_eq!(span.kind, stage.kind.name(), "span {i}");
            assert_eq!(span.label, stage.label, "span {i}");
            assert_eq!(span.deps, stage.deps, "span {i}");
            assert_eq!(span.track, stage.resource.label(), "span {i}");
            // deterministic mode zeroes the measured clock at ingest
            assert_eq!(span.measured_start_ms, 0.0);
            assert_eq!(span.measured_end_ms, 0.0);
        }
        let json = rec.chrome_trace_json();
        let check = validate_chrome_trace(&json).expect("valid Chrome JSON");
        assert_eq!(check.spans, spans.len());
        assert_eq!(check.span_pids, 1, "deterministic trace is modeled-only");
        traces.push(json);
        reports.push(d.stages);
    }
    assert_eq!(
        traces[0], traces[1],
        "deterministic Chrome traces must be byte-identical across executors"
    );
    assert_eq!(
        reports[0].deterministic_summary(),
        reports[1].deterministic_summary()
    );
}

/// A full (non-deterministic) recorder keeps the same modeled spans, adds
/// a measured mirror process and live executor events.
#[test]
fn full_recorder_adds_measured_tracks_and_events() {
    let capacity = 1usize << 12;
    let data = topk_datagen::uniform(capacity * 2 * DEVICES, 99);
    let rec = TraceRecorder::new();
    let d = distributed_dr_topk_observed(
        &cluster(capacity),
        &data,
        K,
        &DrTopKConfig::default(),
        ReloadSchedule::DoubleBuffered,
        Executor::Threaded,
        &rec,
    );
    assert_eq!(d.values, topk_baselines::reference_topk(&data, K));
    assert!(
        !rec.events().is_empty(),
        "live run must emit executor events"
    );
    let check = validate_chrome_trace(&rec.chrome_trace_json()).unwrap();
    assert_eq!(check.span_pids, 2, "modeled + measured track groups");
    assert_eq!(check.spans, 2 * d.stages.stages.len());
}

/// End-to-end engine metrics through the facade: percentile latencies,
/// sustained QPS, per-slot worker occupancy, and a JSON snapshot that
/// round-trips through the shared schema parser.
#[test]
fn engine_metrics_snapshot_round_trips() {
    let engine = TopKEngine::new(GpuCluster::homogeneous(2, DeviceSpec::v100s()));
    let data = topk_datagen::uniform(1 << 14, 7);
    let mut batch = QueryBatch::new();
    let c = batch.add_corpus(5, &data);
    for k in [4usize, 32, 256] {
        batch.push_topk(c, k);
    }
    let rec = Arc::new(TraceRecorder::new());
    engine.attach_recorder(rec.clone());
    let out = engine.run_batch(&batch).unwrap();

    let snap = &out.report.metrics;
    assert_eq!(snap.counter(MetricName::QueriesServed), 3);
    assert_eq!(snap.counter(MetricName::BatchesServed), 1);
    assert_eq!(snap.query_latency_ms.count, 3);
    assert!(snap.query_latency_ms.p50_ms > 0.0);
    assert!(snap.query_latency_ms.p95_ms >= snap.query_latency_ms.p50_ms);
    assert!(snap.sustained_qps > 0.0);
    assert_eq!(snap.workers.len(), 2);
    let total_busy: f64 = snap.workers.iter().map(|w| w.busy_ms).sum();
    assert!(total_busy > 0.0, "some worker must have been busy");
    for w in &snap.workers {
        assert!((0.0..=1.0).contains(&w.occupancy), "slot {}", w.slot);
    }

    // the trace agrees with the report about the modeled batch timeline
    let end = rec.spans().iter().map(|s| s.end_ms).fold(0.0f64, f64::max);
    assert!((end - out.report.total_ms).abs() < 1e-9);

    // JSON round trip under the versioned schema
    let text = snap.to_json().to_pretty_string();
    let parsed = Json::parse(&text).unwrap();
    assert_eq!(
        parsed.get("schema").and_then(|v| v.as_str()),
        Some(drtopk::obs::SCHEMA_VERSION)
    );
    assert_eq!(
        parsed.get("kind").and_then(|v| v.as_str()),
        Some("metrics_snapshot")
    );
    assert_eq!(
        parsed
            .get("counters")
            .and_then(|c| c.get("queries_served"))
            .and_then(Json::as_f64),
        Some(3.0)
    );
    assert_eq!(
        parsed
            .get("sustained_qps")
            .and_then(Json::as_f64)
            .map(|v| v.to_bits()),
        Some(snap.sustained_qps.to_bits())
    );
}
