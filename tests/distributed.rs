//! Integration tests of the distributed (multi-GPU) Dr. Top-k.

use drtopk::core::{distributed_dr_topk, DrTopKConfig};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;
use topk_baselines::reference_topk;
use topk_datagen::Distribution;

fn cluster(devices: usize, capacity: usize) -> GpuCluster {
    let c = GpuCluster::homogeneous(devices, DeviceSpec::v100s());
    for d in c.devices() {
        d.set_capacity_elems(capacity);
    }
    c
}

#[test]
fn distributed_equals_single_device_for_all_distributions() {
    let n = 1 << 15;
    let k = 200;
    for dist in Distribution::SYNTHETIC {
        let data = topk_datagen::generate(dist, n, 7);
        let expected = reference_topk(&data, k);
        for devices in [1usize, 3, 4, 7] {
            let c = cluster(devices, n / 2);
            let got = distributed_dr_topk(&c, &data, k, &DrTopKConfig::default());
            assert_eq!(got.values, expected, "{dist} on {devices} devices");
        }
    }
}

#[test]
fn reload_regime_is_correct_and_reported() {
    let n = 1 << 16;
    let data = topk_datagen::uniform(n, 3);
    let k = 99;
    let expected = reference_topk(&data, k);
    // capacity of 1/16 of |V| on 2 devices: each device owns 8 sub-vectors
    let c = cluster(2, n / 16);
    let got = distributed_dr_topk(&c, &data, k, &DrTopKConfig::default());
    assert_eq!(got.values, expected);
    assert!(got.reload_overhead_ms > 0.0);
    assert!(got.per_device_reload_ms.iter().all(|&t| t > 0.0));
    // fits-in-memory configuration has zero reload
    let c = cluster(16, n / 16);
    let got = distributed_dr_topk(&c, &data, k, &DrTopKConfig::default());
    assert_eq!(got.values, expected);
    assert_eq!(got.reload_overhead_ms, 0.0);
}

#[test]
fn scaling_improves_total_time() {
    let n = 1 << 18;
    let data = topk_datagen::uniform(n, 13);
    let k = 128;
    let capacity = n / 8;
    let t1 = distributed_dr_topk(&cluster(1, capacity), &data, k, &DrTopKConfig::default());
    let t8 = distributed_dr_topk(&cluster(8, capacity), &data, k, &DrTopKConfig::default());
    assert_eq!(t1.values, t8.values);
    assert!(
        t8.total_ms < t1.total_ms,
        "8 devices ({:.3} ms) should beat 1 device ({:.3} ms)",
        t8.total_ms,
        t1.total_ms
    );
    // communication stays bounded (asynchronous gather of k values)
    assert!(t8.communication_ms < 1.0);
}

#[test]
fn k_larger_than_subvector_is_handled() {
    let n = 1 << 12;
    let data = topk_datagen::normal(n, 5);
    let k = 3000; // larger than each sub-vector
    let c = cluster(4, n / 4);
    let got = distributed_dr_topk(&c, &data, k, &DrTopKConfig::default());
    assert_eq!(got.values, reference_topk(&data, k));
}
