//! Integration tests of the batched multi-query engine: fused batches must
//! be bit-identical to independent `dr_topk` / `dr_topk_min` calls for
//! every key type, repeat traffic must hit the plan cache, and fusion must
//! be observably cheaper than per-query loops in global-memory
//! transactions.

mod common;

use common::engine;
use drtopk::core::{dr_topk, dr_topk_min, DrTopKConfig};
use drtopk::engine::{Direction, EngineConfig, Query, QueryBatch, TopKEngine};
use drtopk::prelude::*;
use proptest::prelude::*;

/// Run `specs` (k, largest?) through one fused batch and through N
/// independent single-query calls, comparing bit patterns (so float NaNs
/// compare identically).
fn assert_batch_matches_independent<K: TopKKey>(data: &[K], specs: &[(usize, bool)]) {
    let eng = engine(2);
    let mut batch = QueryBatch::new();
    let c = batch.add_corpus(1, data);
    for &(k, largest) in specs {
        batch.push(Query {
            corpus: c,
            k,
            direction: if largest {
                Direction::Largest
            } else {
                Direction::Smallest
            },
            inner: drtopk::core::InnerAlgorithm::FlagRadix,
            mode: drtopk::core::Mode::Exact,
            path: drtopk::core::PathHint::Auto,
        });
    }
    let out = eng.run_batch(&batch).expect("batch must execute");
    assert_eq!(out.results.len(), specs.len());

    let device = Device::with_host_threads(DeviceSpec::v100s(), 2);
    let config = DrTopKConfig::default();
    for (i, &(k, largest)) in specs.iter().enumerate() {
        let independent = if largest {
            dr_topk(&device, data, k, &config).values
        } else {
            dr_topk_min(&device, data, k, &config).values
        };
        let got: Vec<_> = out.results[i].values.iter().map(|v| v.to_bits()).collect();
        let want: Vec<_> = independent.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "query {i} (k={k}, largest={largest})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fused shared-corpus batch is bit-identical to N independent calls
    /// for every key type — with mixed directions, duplicate queries and
    /// degenerate k = 0 / k > |V| members forced into every batch.
    #[test]
    fn fused_batch_equals_independent_calls_for_all_key_types(
        raw in proptest::collection::vec(any::<u32>(), 64..3000),
        ks in proptest::collection::vec(0usize..4000, 2..7),
        dirs in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let mut specs: Vec<(usize, bool)> = ks
            .iter()
            .zip(dirs.iter().cycle())
            .map(|(&k, &largest)| (k, largest))
            .collect();
        // duplicates and degenerate members, always present
        specs.push(specs[0]);
        specs.push((0, true));
        specs.push((raw.len() + 17, false)); // k > |V|, clamped

        assert_batch_matches_independent::<u32>(&raw, &specs);
        let as_u64: Vec<u64> = raw.iter().map(|&x| (x as u64) << 13 | 0x5).collect();
        assert_batch_matches_independent::<u64>(&as_u64, &specs);
        let as_i32: Vec<i32> = raw.iter().map(|&x| x as i32).collect();
        assert_batch_matches_independent::<i32>(&as_i32, &specs);
        let as_i64: Vec<i64> = raw.iter().map(|&x| x as i64 - (1 << 31)).collect();
        assert_batch_matches_independent::<i64>(&as_i64, &specs);
        // raw bit reinterpretation: exercises NaN/∞/subnormal float keys
        let as_f32: Vec<f32> = raw.iter().map(|&x| f32::from_bits(x)).collect();
        assert_batch_matches_independent::<f32>(&as_f32, &specs);
        let as_f64: Vec<f64> = raw
            .iter()
            .map(|&x| f64::from_bits(((x as u64) << 32) | x as u64))
            .collect();
        assert_batch_matches_independent::<f64>(&as_f64, &specs);
    }
}

#[test]
fn mixed_direction_batch_on_one_corpus_is_exact() {
    // Deterministic spot check of the property above, with both directions
    // interleaved on the same corpus in one batch.
    let data = topk_datagen::normal(1 << 14, 3);
    let specs = [
        (1usize, true),
        (500, false),
        (500, true),
        (1, false),
        (0, false),
        (1 << 15, true),
        (500, true), // duplicate
    ];
    assert_batch_matches_independent::<u32>(&data, &specs);
}

#[test]
fn fused_batch_moves_fewer_transactions_than_independent_runs() {
    // Acceptance criterion: a 32-query shared-corpus batch must show fewer
    // total global-memory transactions than 32 independent dr_topk runs,
    // because 31 of the 32 |V|-scan delegate passes are fused away.
    let n = 1 << 16;
    let data = topk_datagen::uniform(n, 42);
    let ks = topk_datagen::zipf_ks(32, 1 << 12, 1.0, 7);

    let eng = engine(1);
    let mut batch = QueryBatch::new();
    let c = batch.add_corpus(1, &data);
    for &k in &ks {
        batch.push_topk(c, k);
    }
    let out = eng.run_batch(&batch).unwrap();

    let device = Device::new(DeviceSpec::v100s());
    let config = DrTopKConfig::default();
    let mut independent = KernelStats::default();
    for &k in &ks {
        let r = dr_topk(&device, &data, k, &config);
        assert_eq!(
            r.values,
            out.results[ks.iter().position(|&x| x == k).unwrap()].values
        );
        independent += r.stats;
    }

    let fused = out.report.stats;
    assert!(
        fused.total_transactions() < independent.total_transactions(),
        "fused batch must move fewer transactions: {} vs {}",
        fused.total_transactions(),
        independent.total_transactions()
    );
    // the saving is structural, not marginal: at least 15 of the 32
    // delegate passes' worth of |V| reads are gone (the fused group's α is
    // sized for the batch's k_max, so each member pays slightly more in the
    // delegate-sized phases than a per-query-tuned independent run — the
    // 31 fused-away |V| scans dwarf that)
    let one_pass_loads = (n * 4) as u64 / 128;
    assert!(
        independent.global_load_transactions - fused.global_load_transactions > 15 * one_pass_loads,
        "expected ≥15 fused-away delegate passes, saved only {}",
        independent.global_load_transactions - fused.global_load_transactions
    );
    assert_eq!(out.report.delegate_passes_run, 1);
    assert_eq!(out.report.fused_units, 1);
    assert!((out.report.batch_occupancy - 32.0).abs() < 1e-12);
}

#[test]
fn repeated_traffic_hits_the_plan_cache_and_skips_retuning() {
    // Acceptance criterion: the plan cache reports a > 0 hit rate on
    // repeated traffic, and a repeated (n, k) shape skips re-tuning.
    let data = topk_datagen::uniform(1 << 15, 9);
    let eng = engine(2);
    let mut batch = QueryBatch::new();
    let c = batch.add_corpus(5, &data);
    batch.push_topk(c, 128);
    batch.push_topk_min(c, 128);

    let cold = eng.run_batch(&batch).unwrap();
    assert_eq!(cold.report.plan_cache.hits, 0);
    assert_eq!(cold.report.plan_cache.misses, 2); // one α per direction
    assert_eq!(cold.report.delegate_passes_run, 2);

    let warm = eng.run_batch(&batch).unwrap();
    assert!(warm.report.plan_cache.hit_rate() > 0.0);
    assert_eq!(warm.report.plan_cache.hits, 2);
    assert_eq!(warm.report.plan_cache.misses, 0, "no re-tuning on repeat");
    // the delegate cache also removes both construction passes
    assert_eq!(warm.report.delegate_passes_run, 0);
    assert!(warm.report.delegate_cache.hit_rate() > 0.0);
    assert_eq!(warm.results[0].values, cold.results[0].values);
    assert_eq!(warm.results[1].values, cold.results[1].values);
    // a different shape on the same corpus re-tunes exactly once
    let mut grown = QueryBatch::new();
    let c = grown.add_corpus(5, &data);
    grown.push_topk(c, 4096);
    let third = eng.run_batch(&grown).unwrap();
    assert_eq!(third.report.plan_cache.misses, 1);
}

#[test]
fn generated_workloads_run_end_to_end_on_a_cluster() {
    // The datagen workload generators drive the engine directly: Zipf ks,
    // clustered corpora, a quarter of the traffic smallest-direction.
    use topk_datagen::{multi_query_workload, CorpusMix};
    let corpora: Vec<Vec<u32>> = (0..4u64)
        .map(|i| topk_datagen::uniform(1 << 13, 50 + i))
        .collect();
    let specs = multi_query_workload(
        48,
        CorpusMix::Clustered { corpora: 4 },
        512,
        1.0,
        0.25,
        0.0,
        11,
    );

    let eng = engine(4);
    let mut batch = QueryBatch::new();
    let ids: Vec<usize> = corpora
        .iter()
        .enumerate()
        .map(|(i, d)| batch.add_corpus(i as u64, d))
        .collect();
    for spec in &specs {
        batch.push(Query {
            corpus: ids[spec.corpus],
            k: spec.k,
            direction: if spec.largest {
                Direction::Largest
            } else {
                Direction::Smallest
            },
            inner: drtopk::core::InnerAlgorithm::FlagRadix,
            mode: drtopk::core::Mode::Exact,
            path: drtopk::core::PathHint::Auto,
        });
    }
    let out = eng.run_batch(&batch).unwrap();
    assert_eq!(out.results.len(), specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let expect = if spec.largest {
            topk_baselines::reference_topk(&corpora[spec.corpus], spec.k)
        } else {
            topk_baselines::reference_topk_min(&corpora[spec.corpus], spec.k)
        };
        assert_eq!(out.results[i].values, expect, "query {i}: {spec:?}");
    }
    // 4 corpora × ≤2 directions → at most 8 units for 48 queries
    assert!(out.report.num_units <= 8);
    assert!(out.report.batch_occupancy >= 6.0);
    assert!(out.report.throughput_qps > 0.0);
}

#[test]
fn mixed_exact_and_approx_traffic_fuses_separately_and_meets_targets() {
    use drtopk::core::measured_recall;
    use topk_baselines::{reference_topk, reference_topk_min};
    let eng = engine(2);
    let data = topk_datagen::uniform(1 << 16, 77);
    let mut batch = QueryBatch::new();
    let c = batch.add_corpus(9, &data);
    batch.push_topk(c, 64); // exact
    batch.push_topk(c, 400); // exact — fuses with the line above
    batch.push_topk_approx(c, 64, 0.95); // approx @0.95
    batch.push_topk_approx(c, 400, 0.95); // approx @0.95 — fuses with ^
    batch.push_topk_approx(c, 128, 0.90); // approx @0.90 — its own unit
    batch.push_topk_min_approx(c, 32, 0.95); // smallest-direction approx

    let out = eng.run_batch(&batch).unwrap();
    assert_eq!(out.report.num_queries, 6);
    assert_eq!(out.report.approx_queries, 4);
    // exact unit + approx@.95 unit + approx@.90 unit + smallest approx unit
    assert_eq!(out.report.fused_units, 4);

    // exact members stay exact
    assert_eq!(out.results[0].values, reference_topk(&data, 64));
    assert_eq!(out.results[1].values, reference_topk(&data, 400));
    assert_eq!(out.results[0].predicted_recall, 1.0);

    // approximate members meet their targets (and report honest predictions)
    for (idx, k, target) in [(2usize, 64usize, 0.95f64), (3, 400, 0.95), (4, 128, 0.90)] {
        let r = &out.results[idx];
        assert_eq!(r.values.len(), k, "query {idx}");
        assert!(r.predicted_recall >= target, "query {idx}");
        let recall = measured_recall(&r.values, &reference_topk(&data, k));
        assert!(recall >= target, "query {idx}: measured {recall}");
    }
    let min_r = &out.results[5];
    assert_eq!(min_r.values.len(), 32);
    assert!(min_r.predicted_recall >= 0.95);
    let recall = measured_recall(&min_r.values, &reference_topk_min(&data, 32));
    assert!(recall >= 0.95, "smallest-direction approx recall {recall}");

    // same-target approx queries shared one candidate pass
    assert!(out.report.delegate_passes_saved >= 1);

    // warm repeat traffic serves the approximate candidates from the
    // delegate cache — the corpus is never re-read at full length
    let warm = eng.run_batch(&batch).unwrap();
    assert_eq!(warm.report.delegate_passes_run, 0);
    assert!(warm.report.delegate_cache.hits >= 4);
    assert!(
        warm.report.stats.global_loaded_bytes < out.report.stats.global_loaded_bytes / 4,
        "warm {} vs cold {}",
        warm.report.stats.global_loaded_bytes,
        out.report.stats.global_loaded_bytes
    );
    for (w, c) in warm.results.iter().zip(&out.results) {
        assert_eq!(w.values, c.values, "warm results must be identical");
    }
}

#[test]
fn engine_delegate_cache_capacity_zero_disables_caching() {
    let data = topk_datagen::uniform(1 << 13, 1);
    let eng = TopKEngine::with_config(
        drtopk::sim::GpuCluster::homogeneous(1, DeviceSpec::v100s()),
        EngineConfig {
            delegate_cache_capacity: 0,
            ..EngineConfig::default()
        },
    );
    let mut batch = QueryBatch::new();
    let c = batch.add_corpus(1, &data);
    batch.push_topk(c, 64);
    eng.run_batch(&batch).unwrap();
    let again = eng.run_batch(&batch).unwrap();
    assert_eq!(again.report.delegate_cache.hits, 0);
    assert_eq!(again.report.delegate_passes_run, 1);
    // tuning plans still memoize — they are shape-keyed, not data-keyed
    assert_eq!(again.report.plan_cache.hits, 1);
}
