//! Integration tests of the recall-targeted approximate mode: a target of
//! 1.0 must be bit-identical to the exact pipeline for every key type,
//! measured recall on seeded corpora must meet the target, and the
//! approximate mode must move measurably fewer global-memory transactions
//! than exact Dr. Top-k.

use drtopk::core::{
    build_delegate_vector, dr_topk, dr_topk_approx, dr_topk_min, dr_topk_planned, measured_recall,
    DrTopKConfig, Mode, PlannedQuery, RecallTarget,
};
use drtopk::prelude::*;
use gpu_sim::KernelStats;
use proptest::prelude::*;
use topk_baselines::reference_topk;

mod common;

use common::device;

/// Exact-vs-`Approx { 1.0 }` bit-identity for one key type.
fn assert_exact_target_identical<K: TopKKey>(data: &[K], k: usize) {
    let dev = device();
    let exact_cfg = DrTopKConfig::default();
    let approx_cfg = DrTopKConfig {
        mode: Mode::Approx {
            target_recall: RecallTarget::EXACT,
        },
        ..DrTopKConfig::default()
    };
    for (a, b) in [
        (
            dr_topk(&dev, data, k, &exact_cfg),
            dr_topk(&dev, data, k, &approx_cfg),
        ),
        (
            dr_topk_min(&dev, data, k, &exact_cfg),
            dr_topk_min(&dev, data, k, &approx_cfg),
        ),
    ] {
        let got: Vec<_> = a.values.iter().map(|v| v.to_bits()).collect();
        let want: Vec<_> = b.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "values must be bit-identical");
        assert_eq!(a.stats, b.stats, "same kernels must have run");
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.alpha, b.alpha);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Mode::Approx { target_recall: 1.0 }` routes to the exact pipeline:
    /// bit-identical values, counters and workloads for all six key types,
    /// in both directions, including NaN-bearing floats.
    #[test]
    fn exact_target_is_bit_identical_for_all_key_types(
        raw in proptest::collection::vec(any::<u32>(), 64..3000),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((raw.len() as f64 * k_frac) as usize).clamp(1, raw.len());
        assert_exact_target_identical::<u32>(&raw, k);
        let as_u64: Vec<u64> = raw.iter().map(|&x| (x as u64) << 11 | 0x3).collect();
        assert_exact_target_identical::<u64>(&as_u64, k);
        let as_i32: Vec<i32> = raw.iter().map(|&x| x as i32).collect();
        assert_exact_target_identical::<i32>(&as_i32, k);
        let as_i64: Vec<i64> = raw.iter().map(|&x| x as i64 - (1 << 33)).collect();
        assert_exact_target_identical::<i64>(&as_i64, k);
        let mut as_f32: Vec<f32> = raw
            .iter()
            .map(|&x| f32::from_bits(x & 0x7FFF_FFFF) - 1.0e30)
            .collect();
        as_f32[0] = f32::NAN;
        assert_exact_target_identical::<f32>(&as_f32, k);
        let as_f64: Vec<f64> = raw.iter().map(|&x| x as f64 * 0.25 - 1.0e9).collect();
        assert_exact_target_identical::<f64>(&as_f64, k);
    }

    /// On shuffled inputs (the recall model's exchangeability assumption)
    /// the measured recall of random shapes stays close to the prediction.
    #[test]
    fn measured_recall_tracks_the_model_on_random_inputs(
        seed in any::<u64>(),
        k in 16usize..192,
        target_bp in 9000u16..9900,
    ) {
        let dev = device();
        let data = topk_datagen::uniform(1 << 15, seed);
        let target = target_bp as f64 / 10_000.0;
        let got = dr_topk_approx(&dev, &data, k, target, &DrTopKConfig::default());
        prop_assert_eq!(got.values.len(), k);
        let recall = measured_recall(&got.values, &reference_topk(&data, k));
        // the planning headroom makes landing below the raw target rare;
        // allow one stray miss per 16 winners before calling it a failure
        prop_assert!(
            recall >= target - 1.0 / 16.0,
            "recall {} far below target {}", recall, target
        );
    }
}

#[test]
fn pinned_recall_on_seeded_corpora_meets_every_target() {
    // The acceptance gate: measured recall on seeded Uniform/Zipf corpora
    // meets the target at k ∈ {32, 256}. Deterministic seeds make this a
    // regression pin, not a statistical test.
    let dev = device();
    let n = 1 << 19;
    let corpora: [(&str, Vec<u32>); 2] = [
        ("uniform", topk_datagen::uniform(n, 42)),
        (
            "zipf",
            topk_datagen::zipf(n, u32::MAX, topk_datagen::ZIPF_EXPONENT, 0x51BF),
        ),
    ];
    for (name, data) in &corpora {
        for &k in &[32usize, 256] {
            let exact = reference_topk(data, k);
            for &target in &[0.99f64, 0.95, 0.90] {
                let got = dr_topk_approx(&dev, data, k, target, &DrTopKConfig::default());
                assert_eq!(got.values.len(), k, "{name} k={k}");
                let recall = measured_recall(&got.values, &exact);
                assert!(
                    recall >= target,
                    "{name} k={k} target={target}: measured recall {recall}"
                );
                // the plan's own prediction is honest about what it sized for
                let plan = PlannedQuery::plan(n, k, &DrTopKConfig::approx(target));
                assert!(plan.predicted_recall >= target);
            }
        }
    }
}

fn transactions(s: &KernelStats) -> u64 {
    s.global_load_transactions + s.global_store_transactions
}

#[test]
fn approx_moves_fewer_transactions_than_exact() {
    // Mirrors the `approx_recall` bench at test scale: one-shot approximate
    // queries move fewer transactions than exact (the skipped first
    // top-k/concat/second top-k tail), and corpus-resident repeat traffic —
    // the engine's warm delegate cache — moves ≥ 25% fewer (in practice
    // >90%: only the tiny candidate top-k remains).
    let dev = device();
    let n = 1 << 20;
    let k = 256;
    let data = topk_datagen::uniform(n, 7);

    let exact_cfg = DrTopKConfig::default();
    let exact_plan = PlannedQuery::plan(n, k, &exact_cfg);
    let exact_cold = dr_topk(&dev, &data, k, &exact_cfg);
    let exact_shared = build_delegate_vector(
        &dev,
        &data,
        exact_plan.alpha,
        exact_plan.config.beta,
        exact_plan.config.construction,
    );
    let exact_resident = dr_topk_planned(&dev, &data, Some(&exact_shared), &exact_plan);

    let cfg = DrTopKConfig::approx(0.95);
    let plan = PlannedQuery::plan(n, k, &cfg);
    let cold = dr_topk(&dev, &data, k, &cfg);
    let shared = build_delegate_vector(
        &dev,
        &data,
        plan.alpha,
        plan.config.beta,
        plan.config.construction,
    );
    let resident = dr_topk_planned(&dev, &data, Some(&shared), &plan);

    assert!(
        transactions(&cold.stats) < transactions(&exact_cold.stats),
        "one-shot: approx {} vs exact {}",
        transactions(&cold.stats),
        transactions(&exact_cold.stats)
    );
    let saving =
        1.0 - transactions(&resident.stats) as f64 / transactions(&exact_resident.stats) as f64;
    assert!(
        saving >= 0.25,
        "corpus-resident saving {saving:.3} must be at least 25%"
    );
    assert!(
        measured_recall(&cold.values, &reference_topk(&data, k)) >= 0.95,
        "the savings must not cost the recall target"
    );
    // sharing the candidate pass does not change the answer
    let got: Vec<u32> = resident.values.clone();
    assert_eq!(got, cold.values);
}

#[test]
fn approx_modeled_time_beats_exact_at_serving_shapes() {
    // The modeled wall-clock should follow the transaction savings for
    // corpus-resident traffic.
    let dev = device();
    let n = 1 << 20;
    let k = 256;
    let data = topk_datagen::uniform(n, 13);
    let exact_plan = PlannedQuery::plan(n, k, &DrTopKConfig::default());
    let exact_shared = build_delegate_vector(
        &dev,
        &data,
        exact_plan.alpha,
        exact_plan.config.beta,
        exact_plan.config.construction,
    );
    let exact = dr_topk_planned(&dev, &data, Some(&exact_shared), &exact_plan);

    let plan = PlannedQuery::plan(n, k, &DrTopKConfig::approx(0.95));
    let shared = build_delegate_vector(
        &dev,
        &data,
        plan.alpha,
        plan.config.beta,
        plan.config.construction,
    );
    let approx = dr_topk_planned(&dev, &data, Some(&shared), &plan);
    assert!(
        approx.time_ms < exact.time_ms,
        "resident approx {} ms vs exact {} ms",
        approx.time_ms,
        exact.time_ms
    );
}
