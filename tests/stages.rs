//! Stage-graph execution tests: the refactored execution spine must be
//! **bit-identical** to the CPU reference on every path (in-core pipeline,
//! chunked/out-of-core distributed under both reload schedules, approximate
//! mode) for all six key types and both directions — including NaN floats —
//! and the double-buffered schedule must actually hide reload time behind
//! compute (the pinned out-of-core makespan test).

mod common;

use common::{bits, cluster, device, test_executor};
use drtopk::core::{
    as_desc, distributed_dr_topk, distributed_dr_topk_executor, distributed_dr_topk_scheduled,
    dr_topk_min, dr_topk_with_stats, DrTopKConfig, ReloadSchedule, Resource, StageKind,
    TransferLane,
};
use drtopk::prelude::*;
use proptest::prelude::*;
use topk_baselines::{reference_topk, reference_topk_min};

/// Every stage-graph path must reproduce the pre-refactor reference answer
/// bit-for-bit: the in-core pipeline, the chunked distributed runner under
/// both reload schedules, and the approximate mode at target 1.0 (which is
/// contractually the exact pipeline).
fn assert_stage_execution_matches_reference<K: TopKKey>(data: &[K], k: usize, largest: bool) {
    let dev = device();
    let cfg = DrTopKConfig::default();
    let expected = if largest {
        bits(&reference_topk(data, k))
    } else {
        bits(&reference_topk_min(data, k))
    };

    // In-core single-device pipeline.
    let in_core = if largest {
        dr_topk_with_stats(&dev, data, k, &cfg)
    } else {
        dr_topk_min(&dev, data, k, &cfg)
    };
    assert_eq!(bits(&in_core.values), expected, "in-core");
    // The result *is* its stage schedule: time and breakdown re-derive.
    assert!((in_core.time_ms - in_core.stages.makespan_ms).abs() < 1e-12);
    assert_eq!(in_core.breakdown, in_core.stages.phase_breakdown());
    assert_eq!(in_core.stats, in_core.stages.stats());
    // single-device graphs never move data between memories
    assert_eq!(in_core.breakdown.transfer_ms, 0.0);

    // Chunked / out-of-core distributed execution: a capacity that forces
    // several chunks per device, under both reload schedules.
    let capacity = (data.len() / 3).max(1);
    let c = cluster(2, capacity);
    for schedule in [ReloadSchedule::Serial, ReloadSchedule::DoubleBuffered] {
        // Runs under the suite's executor (`DRTOPK_TEST_EXECUTOR`): CI
        // replays the whole matrix under both Serial and Threaded.
        let got = if largest {
            distributed_dr_topk_executor(&c, data, k, &cfg, schedule, test_executor())
        } else {
            distributed_dr_topk_executor(&c, as_desc(data), k, &cfg, schedule, test_executor())
                .into_native()
        };
        assert_eq!(bits(&got.values), expected, "distributed {schedule}");
        assert_eq!(got.schedule, schedule);
        assert!((got.total_ms - got.stages.makespan_ms).abs() < 1e-12);
        // transfer time is reported as transfer, never folded into compute
        assert!((got.breakdown.transfer_ms - got.stages.transfer_ms()).abs() < 1e-12);
        assert!(
            (got.reload_overhead_ms + got.communication_ms - got.breakdown.transfer_ms).abs()
                < 1e-9,
            "reloads + gather must equal the transfer phase"
        );
    }

    // Approximate mode at target 1.0 is contractually the exact pipeline.
    if largest {
        let exact_again = dr_topk_approx(&dev, data, k, 1.0, &cfg);
        assert_eq!(bits(&exact_again.values), expected, "approx target 1.0");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Stage-graph execution is bit-identical to the reference results
    /// across all six key types and both directions, on every execution
    /// path. Raw bit reinterpretation for the float types injects NaN, ∞
    /// and subnormal keys.
    #[test]
    fn stage_execution_is_bit_identical_for_all_key_types(
        raw in proptest::collection::vec(any::<u32>(), 64..2000),
        k_frac in 0.0f64..1.0,
        largest in any::<bool>(),
    ) {
        let k = ((raw.len() as f64 * k_frac) as usize).clamp(1, raw.len());
        assert_stage_execution_matches_reference::<u32>(&raw, k, largest);
        let as_u64: Vec<u64> = raw.iter().map(|&x| (x as u64) << 13 | 0x5).collect();
        assert_stage_execution_matches_reference::<u64>(&as_u64, k, largest);
        let as_i32: Vec<i32> = raw.iter().map(|&x| x as i32).collect();
        assert_stage_execution_matches_reference::<i32>(&as_i32, k, largest);
        let as_i64: Vec<i64> = raw.iter().map(|&x| x as i64 - (1 << 31)).collect();
        assert_stage_execution_matches_reference::<i64>(&as_i64, k, largest);
        // raw bit reinterpretation: exercises NaN/∞/subnormal float keys
        let as_f32: Vec<f32> = raw.iter().map(|&x| f32::from_bits(x)).collect();
        assert_stage_execution_matches_reference::<f32>(&as_f32, k, largest);
        let as_f64: Vec<f64> = raw
            .iter()
            .map(|&x| f64::from_bits(((x as u64) << 32) | x as u64))
            .collect();
        assert_stage_execution_matches_reference::<f64>(&as_f64, k, largest);
    }

    /// The approximate stage path returns bit-identical results whether the
    /// candidate pass runs inline or the plan is re-executed — the graph is
    /// deterministic.
    #[test]
    fn approx_stage_execution_is_deterministic(
        raw in proptest::collection::vec(any::<u32>(), 512..3000),
        k in 1usize..32,
    ) {
        let dev = device();
        let cfg = DrTopKConfig::default();
        let a = dr_topk_approx(&dev, &raw, k, 0.9, &cfg);
        let b = dr_topk_approx(&dev, &raw, k, 0.9, &cfg);
        prop_assert_eq!(bits(&a.values), bits(&b.values));
        prop_assert_eq!(a.stats, b.stats);
        prop_assert!((a.time_ms - b.time_ms).abs() < 1e-12);
    }
}

/// Pinned acceptance test: on a corpus ≥ 4× the single-device capacity,
/// double-buffered stage execution must model a makespan **at least 20%
/// lower** than the serial-reload schedule, while the values stay
/// bit-identical to `reference_topk`.
#[test]
fn double_buffering_hides_at_least_twenty_percent_at_4x_capacity() {
    let capacity = 1 << 15;
    let k = 128;
    for devices in [1usize, 2] {
        let n = capacity * 4 * devices; // 4× the aggregate capacity
        let data = topk_datagen::uniform(n, 0xC0FFEE);
        let c = cluster(devices, capacity);
        let serial = distributed_dr_topk_scheduled(
            &c,
            &data,
            k,
            &DrTopKConfig::default(),
            ReloadSchedule::Serial,
        );
        let db = distributed_dr_topk_scheduled(
            &c,
            &data,
            k,
            &DrTopKConfig::default(),
            ReloadSchedule::DoubleBuffered,
        );
        // bit-identical results on both schedules, equal to the reference
        assert_eq!(serial.values, reference_topk(&data, k), "{devices} devices");
        assert_eq!(db.values, serial.values);
        assert_eq!(db.kth_value, serial.kth_value);
        assert_eq!(db.stats, serial.stats, "schedules only change timing");
        // On one device the serial schedule hides nothing at all (with
        // several devices its per-device chains still run concurrently, so
        // the schedule-level efficiency reflects that parallelism too);
        // double buffering must hide ≥ 20% of the makespan either way.
        if devices == 1 {
            assert_eq!(serial.stages.overlap_efficiency(), 0.0);
        }
        let win = 1.0 - db.total_ms / serial.total_ms;
        assert!(
            win >= 0.20,
            "{devices} devices: double-buffered {:.4} ms vs serial {:.4} ms — only {:.1}% hidden",
            db.total_ms,
            serial.total_ms,
            win * 100.0
        );
        assert!(db.stages.overlap_efficiency() > 0.0);
        // both schedules paid for the same transfers; only the overlap moved
        assert!((db.reload_overhead_ms - serial.reload_overhead_ms).abs() < 1e-12);
        assert!(db.reload_overhead_ms > 0.0);
    }
}

#[test]
fn out_of_core_corpus_beyond_aggregate_memory_is_exact() {
    // True out-of-core: the host-resident corpus is 8× the *aggregate*
    // device memory of the cluster; every device streams a long chain of
    // chunks. Results stay exact and the ingestion overlaps.
    let capacity = 1 << 13;
    let devices = 2;
    let n = capacity * 8 * devices;
    let data = topk_datagen::customized(n, 17);
    let c = cluster(devices, capacity);
    let got = distributed_dr_topk(&c, &data, 200, &DrTopKConfig::default());
    assert_eq!(got.values, reference_topk(&data, 200));
    assert_eq!(got.schedule, ReloadSchedule::DoubleBuffered);
    assert!(got.stages.overlap_efficiency() > 0.0);
    // 7 streamed chunks per device
    let loads = got
        .stages
        .stages
        .iter()
        .filter(|s| s.kind == StageKind::ChunkLoad)
        .count();
    assert_eq!(loads, 14);
    assert!(got.reload_overhead_ms > 0.0);
}

#[test]
fn distributed_stage_schedule_is_well_formed() {
    let capacity = 1 << 13;
    let data = topk_datagen::uniform(capacity * 6, 3);
    let c = cluster(2, capacity);
    let got = distributed_dr_topk(&c, &data, 64, &DrTopKConfig::default());
    let stages = &got.stages.stages;
    // chunk loads live on per-device host→device lanes, computes on the
    // device queues, the gather on the interconnect, the final on device 0
    for s in stages {
        match s.kind {
            StageKind::ChunkLoad => {
                assert!(matches!(
                    s.resource,
                    Resource::Transfer(TransferLane::HostToDevice(_))
                ));
            }
            StageKind::Gather => {
                assert!(matches!(
                    s.resource,
                    Resource::Transfer(TransferLane::Interconnect(_))
                ));
            }
            StageKind::FinalTopK => assert_eq!(s.resource, Resource::Compute(0)),
            _ => assert!(matches!(s.resource, Resource::Compute(_))),
        }
        assert!(s.end_ms >= s.start_ms);
        assert!(s.end_ms <= got.stages.makespan_ms + 1e-12);
    }
    // each device's gather rides its own interconnect lane and starts only
    // after *that* device's last selection stage (not after every device's —
    // per-source gathers overlap with the other devices' compute)
    let gathers: Vec<_> = stages
        .iter()
        .filter(|s| s.kind == StageKind::Gather)
        .collect();
    assert!(!gathers.is_empty(), "multi-device run gathers");
    for gather in &gathers {
        let Resource::Transfer(TransferLane::Interconnect(src)) = gather.resource else {
            panic!("gather off the interconnect: {:?}", gather.resource);
        };
        for s in stages {
            if matches!(s.kind, StageKind::LocalTopK | StageKind::LocalMerge)
                && s.resource == Resource::Compute(src)
            {
                assert!(
                    s.end_ms <= gather.start_ms + 1e-12,
                    "{} after its device's gather",
                    s.label
                );
            }
        }
    }
    // the final selection waits for every gather
    let final_stage = stages
        .iter()
        .find(|s| s.kind == StageKind::FinalTopK)
        .expect("distributed run ends in a final selection");
    for gather in &gathers {
        assert!(gather.end_ms <= final_stage.start_ms + 1e-12);
    }
    // per-device compute/reload columns agree with the schedule
    for d in 0..2 {
        let compute: f64 = stages
            .iter()
            .filter(|s| {
                matches!(s.kind, StageKind::LocalTopK | StageKind::LocalMerge)
                    && s.resource == Resource::Compute(d)
            })
            .map(|s| s.end_ms - s.start_ms)
            .sum();
        assert!((compute - got.per_device_compute_ms[d]).abs() < 1e-12);
    }
}

#[test]
fn engine_reports_overlap_and_transfer_for_sharded_batches() {
    use drtopk::engine::{QueryBatch, TopKEngine};
    let c = cluster(2, 1 << 13);
    let engine = TopKEngine::new(c);
    let data = topk_datagen::uniform(1 << 16, 5); // 8× one device's capacity
    let mut batch = QueryBatch::new();
    let corpus = batch.add_corpus(9, &data);
    batch.push_topk(corpus, 50);
    let out = engine.run_batch(&batch).unwrap();
    assert_eq!(out.results[0].values, reference_topk(&data, 50));
    assert_eq!(out.report.sharded_queries, 1);
    // satellite fix: reload/gather time is reported as transfer, not
    // folded into per-device compute, and the overlap is surfaced
    assert!(out.report.phase_ms.transfer_ms > 0.0);
    assert!(out.results[0].breakdown.transfer_ms > 0.0);
    assert!(out.results[0].breakdown.second_topk_ms > 0.0);
    assert!(
        out.report.overlap_efficiency > 0.0,
        "double-buffered sharded ingestion must hide some transfer time"
    );
    assert!(out.report.overlap_efficiency < 1.0);
    // a purely in-core batch reports no transfer and no overlap
    let small = topk_datagen::uniform(1 << 12, 6);
    let engine = TopKEngine::new(cluster(2, 1 << 20));
    let mut batch = QueryBatch::new();
    let corpus = batch.add_corpus(1, &small);
    batch.push_topk(corpus, 10);
    let out = engine.run_batch(&batch).unwrap();
    assert_eq!(out.report.phase_ms.transfer_ms, 0.0);
    assert_eq!(out.report.overlap_efficiency, 0.0);
}
