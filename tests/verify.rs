//! Stage-graph verifier integration tests — both halves of the contract:
//!
//! * **Negative**: every diagnostic code in `docs/DIAGNOSTICS.md` is
//!   reachable, and seeded planner mutations (a swapped lane tag, a
//!   single-buffer reload, a dropped dependency edge) are each caught by
//!   their specific stable code.
//! * **Positive**: every graph the real planners build — exact,
//!   approximate, distributed out-of-core under both reload schedules,
//!   engine-fused batches — verifies clean, across key types, shard
//!   counts and modes. In debug builds the executors assert this on every
//!   run, so the whole suite doubles as a verification corpus; these
//!   tests additionally pin it through the public `verify()` API.

use drtopk::core::{
    distributed_dr_topk_scheduled, dr_topk_approx, dr_topk_min, dr_topk_with_stats, verify_specs,
    DiagnosticCode, DrTopKConfig, ReloadSchedule, Resource, StageGraph, StageKind, StageOutcome,
    StageSpec, TransferLane, VerifyOptions,
};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;
use proptest::prelude::*;

fn spec(kind: StageKind, resource: Resource, deps: &[usize]) -> StageSpec {
    StageSpec {
        kind,
        label: kind.name().to_string(),
        resource,
        deps: deps.to_vec(),
    }
}

fn codes(specs: &[StageSpec], opts: &VerifyOptions) -> Vec<DiagnosticCode> {
    verify_specs(specs, opts).iter().map(|d| d.code).collect()
}

/// The healthy single-device out-of-core shape the mutations below are
/// seeded into: resident chunk 0, two streamed chunks whose loads wait on
/// the compute that frees their staging buffer, a merge, and the final
/// top-k.
fn healthy_out_of_core() -> Vec<StageSpec> {
    let lane = Resource::Transfer(TransferLane::HostToDevice(0));
    let c = Resource::Compute(0);
    vec![
        spec(StageKind::LocalTopK, c, &[]),         // 0: chunk 0 compute
        spec(StageKind::ChunkLoad, lane, &[]),      // 1: chunk 1 load
        spec(StageKind::LocalTopK, c, &[1]),        // 2: chunk 1 compute
        spec(StageKind::ChunkLoad, lane, &[0]),     // 3: chunk 2 load
        spec(StageKind::LocalTopK, c, &[3]),        // 4: chunk 2 compute
        spec(StageKind::LocalMerge, c, &[0, 2, 4]), // 5
        spec(StageKind::FinalTopK, c, &[5]),        // 6
    ]
}

/// The healthy exact-pipeline shape (delegate → first → concat → second).
fn healthy_pipeline() -> Vec<StageSpec> {
    let c = Resource::Compute(0);
    vec![
        spec(StageKind::DelegateConstruction, c, &[]),
        spec(StageKind::FirstTopK, c, &[0]),
        spec(StageKind::Concatenate, c, &[1]),
        spec(StageKind::SecondTopK, c, &[2]),
    ]
}

/// The healthy two-pass radix-path shape (histogram → refine per pass,
/// then candidate assembly and the final select).
fn healthy_radix_path() -> Vec<StageSpec> {
    let c = Resource::Compute(0);
    vec![
        spec(StageKind::RadixHistogram, c, &[]),
        spec(StageKind::RadixRefine, c, &[0]),
        spec(StageKind::RadixHistogram, c, &[1]),
        spec(StageKind::RadixRefine, c, &[2]),
        spec(StageKind::CandidateGather, c, &[3]),
        spec(StageKind::RadixSelect, c, &[4]),
    ]
}

#[test]
fn healthy_shapes_are_clean() {
    assert!(verify_specs(&healthy_pipeline(), &VerifyOptions::default()).is_empty());
    assert!(verify_specs(&healthy_radix_path(), &VerifyOptions::default()).is_empty());
    let double_buffered = VerifyOptions {
        staging_buffers: Some(ReloadSchedule::DoubleBuffered.staging_buffers()),
    };
    assert!(verify_specs(&healthy_out_of_core(), &double_buffered).is_empty());
}

/// Every diagnostic code is reachable from a minimal seeded mutation. The
/// `match` is exhaustive over [`DiagnosticCode`], so adding a variant
/// without a reachability witness here fails to compile — the same
/// mechanism `tests/docs_drift.rs` uses to keep `docs/DIAGNOSTICS.md`
/// honest.
#[test]
fn every_diagnostic_code_is_reachable() {
    use StageKind::*;
    let c0 = Resource::Compute(0);
    let c1 = Resource::Compute(1);
    let c2 = Resource::Compute(2);
    let h2d1 = Resource::Transfer(TransferLane::HostToDevice(1));
    let ic1 = Resource::Transfer(TransferLane::Interconnect(1));
    for code in DiagnosticCode::ALL {
        let (specs, opts) = match code {
            DiagnosticCode::DanglingDep => {
                (vec![spec(SecondTopK, c0, &[3])], VerifyOptions::default())
            }
            DiagnosticCode::DepCycle => (
                vec![
                    spec(LocalMerge, c0, &[1]),
                    spec(LocalMerge, c0, &[0]),
                    spec(FinalTopK, c0, &[0, 1]),
                ],
                VerifyOptions::default(),
            ),
            DiagnosticCode::OrphanStage => (
                // A delegate pass whose output feeds nothing.
                vec![
                    spec(DelegateConstruction, c0, &[]),
                    spec(SecondTopK, c0, &[]),
                ],
                VerifyOptions::default(),
            ),
            DiagnosticCode::ResourceKindMismatch => (
                // A transfer kind parked on a compute queue.
                vec![
                    spec(ChunkLoad, c0, &[]),
                    spec(LocalTopK, c0, &[0]),
                    spec(FinalTopK, c0, &[1]),
                ],
                VerifyOptions::default(),
            ),
            DiagnosticCode::WrongLane => (
                // A chunk load on an interconnect lane.
                vec![
                    spec(ChunkLoad, ic1, &[]),
                    spec(LocalTopK, c1, &[0]),
                    spec(FinalTopK, c1, &[1]),
                ],
                VerifyOptions::default(),
            ),
            DiagnosticCode::CrossDeviceChunk => (
                // Device 1's lane feeding device 0's compute queue.
                vec![
                    spec(ChunkLoad, h2d1, &[]),
                    spec(LocalTopK, c0, &[0]),
                    spec(FinalTopK, c0, &[1]),
                ],
                VerifyOptions::default(),
            ),
            DiagnosticCode::GatherWithoutSource => (
                vec![spec(Gather, ic1, &[]), spec(FinalTopK, c0, &[0])],
                VerifyOptions::default(),
            ),
            DiagnosticCode::GatherSourceMismatch => (
                // Device 1's interconnect lane moving device 2's winners.
                vec![
                    spec(LocalTopK, c2, &[]),
                    spec(Gather, ic1, &[0]),
                    spec(FinalTopK, c0, &[1]),
                ],
                VerifyOptions::default(),
            ),
            DiagnosticCode::QueueDeadlock => (
                // Acyclic deps, but stage 0 waits on a stage queued behind
                // it on its own FIFO resource.
                vec![
                    spec(LocalMerge, c0, &[1]),
                    spec(LocalTopK, c0, &[]),
                    spec(FinalTopK, c0, &[0]),
                ],
                VerifyOptions::default(),
            ),
            DiagnosticCode::DoubleBufferHazard => (
                healthy_out_of_core(),
                VerifyOptions {
                    staging_buffers: Some(1),
                },
            ),
            DiagnosticCode::PhaseOrder => (
                // Second top-k fed directly by the first top-k: the
                // concatenation phase was skipped outright.
                vec![
                    spec(DelegateConstruction, c0, &[]),
                    spec(FirstTopK, c0, &[0]),
                    spec(SecondTopK, c0, &[1]),
                ],
                VerifyOptions::default(),
            ),
            DiagnosticCode::RadixChainBroken => (
                // A narrowing chain that never reaches a final select.
                vec![
                    spec(RadixHistogram, c0, &[]),
                    spec(RadixRefine, c0, &[0]),
                    spec(CandidateGather, c0, &[1]),
                ],
                VerifyOptions::default(),
            ),
        };
        let found = codes(&specs, &opts);
        assert!(
            found.contains(&code),
            "{code} must be reachable; verifier reported {found:?}"
        );
    }
}

// The three acceptance-criteria mutations: each seeded into a healthy
// planner shape and caught by its own distinct stable code.

#[test]
fn mutation_swapped_lane_tag_is_caught_as_v005() {
    let mut specs = healthy_out_of_core();
    specs[1].resource = Resource::Transfer(TransferLane::Interconnect(0));
    let found = codes(&specs, &VerifyOptions::default());
    assert!(
        found.contains(&DiagnosticCode::WrongLane),
        "swapped lane tag must be V005, got {found:?}"
    );
}

#[test]
fn mutation_single_buffer_reload_is_caught_as_v010() {
    // The double-buffered dependency shape declared to own one staging
    // buffer: chunk 2's load overwrites chunk 1 mid-compute.
    let found = codes(
        &healthy_out_of_core(),
        &VerifyOptions {
            staging_buffers: Some(ReloadSchedule::Serial.staging_buffers()),
        },
    );
    assert!(
        found.contains(&DiagnosticCode::DoubleBufferHazard),
        "1-buffer reload of a double-buffered shape must be V010, got {found:?}"
    );
}

#[test]
fn mutation_missing_dependency_edge_is_caught_as_v011() {
    let mut specs = healthy_pipeline();
    specs[2].deps.clear(); // concatenate no longer waits on the first top-k
    let found = codes(&specs, &VerifyOptions::default());
    assert!(
        found.contains(&DiagnosticCode::PhaseOrder),
        "dropped concat input edge must be V011, got {found:?}"
    );
}

#[test]
fn mutation_dropped_radix_select_is_caught_as_v012() {
    // The planner-shaped radix chain with its final select deleted: every
    // surviving radix stage now narrows toward nothing.
    let mut specs = healthy_radix_path();
    specs.pop();
    let found = codes(&specs, &VerifyOptions::default());
    assert!(
        found.contains(&DiagnosticCode::RadixChainBroken),
        "dropped radix select must be V012, got {found:?}"
    );
}

/// The graphs the real radix planner builds — forced via the path pin, in
/// both directions and with an early-pinning input — verify clean through
/// the public API, and carry the fixed histogram/refine…gather/select
/// shape V012 watches over.
#[test]
fn planner_built_radix_graphs_verify_clean() {
    use drtopk::core::PathHint;
    let dev = Device::with_host_threads(DeviceSpec::v100s(), 2);
    let cfg = DrTopKConfig {
        path: PathHint::Radix,
        ..DrTopKConfig::default()
    };
    let data = topk_datagen::uniform(1 << 13, 0xD00D);
    for &k in &[1usize, 100, 1 << 12] {
        let got = dr_topk_with_stats(&dev, &data, k, &cfg);
        assert!(got.stages.verify().is_empty(), "k={k}");
        let min = dr_topk_min(&dev, &data, k, &cfg);
        assert!(min.stages.verify().is_empty(), "min k={k}");
    }
    // Early pinning: the no-op tail stages still form an unbroken chain.
    let mut spiked = vec![7u32; 1 << 12];
    spiked[99] = u32::MAX;
    let got = dr_topk_with_stats(&dev, &spiked, 1, &cfg);
    assert!(got.stages.verify().is_empty());
}

/// In debug builds every executor refuses to run a graph that fails
/// verification (release builds skip the gate, so this test only exists
/// under `debug_assertions`).
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "stage graph failed verification")]
fn debug_execution_refuses_graphs_that_fail_verification() {
    let mut g: StageGraph<()> = StageGraph::new();
    // An orphan delegate pass: its output feeds nothing (V003).
    g.add(
        StageKind::DelegateConstruction,
        Resource::Compute(0),
        &[],
        |_| StageOutcome::default(),
    );
    g.add(StageKind::SecondTopK, Resource::Compute(0), &[], |_| {
        StageOutcome::default()
    });
    let _ = g.execute(&());
}

/// Engine-built graphs — the fused shared-pass macro graph and the spliced
/// per-unit reports — are verified by debug assertions inside the engine;
/// this exercises both paths (exact fusion, approximate fusion, plan-cache
/// hit) end to end.
#[test]
fn engine_fused_and_spliced_graphs_verify_clean_in_debug() {
    use drtopk::engine::{Direction, Query, QueryBatch, TopKEngine};
    let eng = TopKEngine::new(GpuCluster::homogeneous(2, DeviceSpec::v100s()));
    let data = topk_datagen::uniform(1 << 14, 0xA11CE);
    let mut batch = QueryBatch::new();
    let c = batch.add_corpus(1, &data);
    for k in [32usize, 128, 512] {
        batch.push(Query {
            corpus: c,
            k,
            direction: Direction::Largest,
            inner: drtopk::core::InnerAlgorithm::FlagRadix,
            mode: drtopk::core::Mode::Exact,
            path: drtopk::core::PathHint::Auto,
        });
    }
    batch.push_topk_approx(c, 64, 0.9);
    let out = eng.run_batch(&batch).expect("batch must execute");
    assert_eq!(out.results.len(), 4);
    // Second submission re-executes through the plan cache path.
    let again = eng.run_batch(&batch).expect("cached batch must execute");
    assert_eq!(again.results.len(), 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The positive half of the verifier contract: every graph the real
    /// planners build verifies clean — exact (both directions),
    /// approximate, and distributed out-of-core with the staging-buffer
    /// hazard analysis armed for the schedule actually used — across
    /// unsigned, signed and float key types and 1–3 devices.
    #[test]
    fn planner_built_graphs_verify_clean(
        raw in proptest::collection::vec(any::<u32>(), 64..3000),
        k_frac in 0.0f64..1.0,
        devices in 1usize..=3,
        double_buffered in any::<bool>(),
        target in 0.7f64..1.0,
    ) {
        let k = ((raw.len() as f64 * k_frac) as usize).clamp(1, raw.len());
        let dev = Device::with_host_threads(DeviceSpec::v100s(), 2);
        let cfg = DrTopKConfig::default();

        let exact = dr_topk_with_stats(&dev, &raw, k, &cfg);
        prop_assert!(exact.stages.verify().is_empty());
        let min = dr_topk_min(&dev, &raw, k, &cfg);
        prop_assert!(min.stages.verify().is_empty());
        let approx = dr_topk_approx(&dev, &raw, k, target, &cfg);
        prop_assert!(approx.stages.verify().is_empty());

        let schedule = if double_buffered {
            ReloadSchedule::DoubleBuffered
        } else {
            ReloadSchedule::Serial
        };
        let opts = VerifyOptions {
            staging_buffers: Some(schedule.staging_buffers()),
        };
        let cluster = GpuCluster::homogeneous(devices, DeviceSpec::v100s());
        for d in cluster.devices() {
            // Small enough to force multiple chunks per device.
            d.set_capacity_elems((raw.len() / 3).max(1));
        }
        let dist = distributed_dr_topk_scheduled(&cluster, &raw, k, &cfg, schedule);
        prop_assert!(dist.stages.verify_with(&opts).is_empty());

        // Signed and float key paths reuse the same planners; spot-check
        // that the key type does not change the graph's verdict.
        let as_i64: Vec<i64> = raw.iter().map(|&x| x as i64 - (1 << 31)).collect();
        prop_assert!(dr_topk_with_stats(&dev, &as_i64, k, &cfg).stages.verify().is_empty());
        let as_f32: Vec<f32> = raw.iter().map(|&x| f32::from_bits(x)).collect();
        let dist_f = distributed_dr_topk_scheduled(&cluster, &as_f32, k, &cfg, schedule);
        prop_assert!(dist_f.stages.verify_with(&opts).is_empty());
    }
}
