//! Acceptance tests for the threaded stage-graph executor and its
//! wall-clock calibration harness:
//!
//! * on an out-of-core sharded run at ≥ 4× aggregate capacity, the
//!   threaded executor's **measured** wall-clock makespan must land within
//!   25% of the calibrated prediction AND at least 20% below the serial
//!   executor's measured wall-clock — real time has to track the modeled
//!   overlap, not just the model;
//! * results and modeled reports stay bit-identical across executors and
//!   across repeated runs (the determinism stress test), regardless of the
//!   host thread interleaving.

use drtopk::core::{
    distributed_dr_topk_executor, dr_topk_approx, dr_topk_with_stats, DrTopKConfig, Executor,
    ReloadSchedule,
};
use drtopk::prelude::*;
use drtopk::sim::{GpuCluster, InterconnectSpec};
use topk_baselines::reference_topk;

/// A cluster whose devices do all simulated kernel work on the calling
/// host thread (`host_threads = 1`), so the only host parallelism in play
/// is the threaded stage-graph executor's — the quantity under test.
fn single_threaded_cluster(devices: usize, capacity: usize) -> GpuCluster {
    let devices = (0..devices)
        .map(|_| Device::with_host_threads(DeviceSpec::v100s(), 1))
        .collect();
    let c = GpuCluster::new(devices, InterconnectSpec::default());
    for d in c.devices() {
        d.set_capacity_elems(capacity);
    }
    c
}

/// The headline acceptance criterion. Wall-clock assertions retry a few
/// times (the host scheduler is allowed an off day) but the bit-identity
/// assertions must hold on **every** attempt.
///
/// On hosts without enough cores to actually run the per-device worker
/// threads concurrently (CI containers are routinely pinned to one CPU),
/// the wall-clock band is physically unreachable — time-slicing one core
/// cannot beat running on it serially — so the timing assertions are
/// skipped there and only the executor-independence bit-identity half
/// runs. The modeled 20%-overlap pin stays enforced unconditionally in
/// `tests/stages.rs`.
#[test]
fn threaded_executor_tracks_modeled_makespan_on_out_of_core_run() {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let check_wall_clock = cores >= 4;
    let capacity = 1 << 16;
    let devices = 4;
    let n = capacity * 4 * devices; // 4× the aggregate capacity: 16 chunks
    let k = 128;
    let data = topk_datagen::uniform(n, 0xCA11B);
    let cfg = DrTopKConfig::default();
    let expected = reference_topk(&data, k);

    let mut attempts = Vec::new();
    for _ in 0..3 {
        let c = single_threaded_cluster(devices, capacity);
        let serial = distributed_dr_topk_executor(
            &c,
            &data,
            k,
            &cfg,
            ReloadSchedule::DoubleBuffered,
            Executor::Serial,
        );
        let c = single_threaded_cluster(devices, capacity);
        let threaded = distributed_dr_topk_executor(
            &c,
            &data,
            k,
            &cfg,
            ReloadSchedule::DoubleBuffered,
            Executor::Threaded,
        );

        // Bit-identity holds unconditionally, every attempt.
        assert_eq!(threaded.values, expected);
        assert_eq!(serial.values, expected);
        assert_eq!(threaded.values, serial.values);
        assert_eq!(threaded.stats, serial.stats);
        assert_eq!(threaded.total_ms.to_bits(), serial.total_ms.to_bits());
        assert_eq!(
            threaded.stages.deterministic_summary(),
            serial.stages.deterministic_summary(),
            "modeled report must not depend on the executor"
        );

        // Wall-clock: threaded must beat serial by ≥ 20%, and land within
        // 25% of what the per-kind calibration fit predicts for the
        // modeled schedule.
        if !check_wall_clock {
            eprintln!(
                "note: only {cores} core(s) available — skipping the \
                 wall-clock acceptance band, keeping bit-identity checks"
            );
            return;
        }
        let t = threaded.stages.measured_makespan_ms;
        let s = serial.stages.measured_makespan_ms;
        let predicted = threaded
            .stages
            .calibration
            .predicted_makespan_ms(&threaded.stages);
        let beats_serial = t <= 0.80 * s;
        let within_prediction = predicted > 0.0 && (t - predicted).abs() <= 0.25 * predicted;
        attempts.push((t, s, predicted));
        if beats_serial && within_prediction {
            return;
        }
    }
    panic!(
        "threaded executor never hit the wall-clock acceptance band in \
         {} attempts (threaded_ms, serial_ms, predicted_ms): {attempts:?}",
        attempts.len()
    );
}

/// Determinism stress test: the same exact, approximate and distributed
/// graphs run repeatedly under the threaded executor must return
/// bit-identical values and byte-identical **modeled** stage reports on
/// every run — thread interleaving may only move the measured fields.
#[test]
fn repeated_threaded_runs_are_bit_identical() {
    let dev = Device::with_host_threads(DeviceSpec::v100s(), 2);
    let cfg = DrTopKConfig::default();
    let data = topk_datagen::customized(1 << 15, 77);
    let k = 96;

    let exact0 = dr_topk_with_stats(&dev, &data, k, &cfg);
    let approx0 = dr_topk_approx(&dev, &data, k, 0.9, &cfg);
    let dist0 = {
        let c = single_threaded_cluster(4, 1 << 13);
        distributed_dr_topk_executor(
            &c,
            &data,
            k,
            &cfg,
            ReloadSchedule::DoubleBuffered,
            Executor::Threaded,
        )
    };
    for run in 1..4 {
        let exact = dr_topk_with_stats(&dev, &data, k, &cfg);
        assert_eq!(exact.values, exact0.values, "exact values, run {run}");
        assert_eq!(
            exact.stages.deterministic_summary(),
            exact0.stages.deterministic_summary(),
            "exact report, run {run}"
        );

        let approx = dr_topk_approx(&dev, &data, k, 0.9, &cfg);
        assert_eq!(approx.values, approx0.values, "approx values, run {run}");
        assert_eq!(
            approx.stages.deterministic_summary(),
            approx0.stages.deterministic_summary(),
            "approx report, run {run}"
        );

        let c = single_threaded_cluster(4, 1 << 13);
        let dist = distributed_dr_topk_executor(
            &c,
            &data,
            k,
            &cfg,
            ReloadSchedule::DoubleBuffered,
            Executor::Threaded,
        );
        assert_eq!(dist.values, dist0.values, "distributed values, run {run}");
        assert_eq!(dist.total_ms.to_bits(), dist0.total_ms.to_bits());
        assert_eq!(
            dist.stages.deterministic_summary(),
            dist0.stages.deterministic_summary(),
            "distributed report, run {run}"
        );
    }
}

/// The calibration fit committed as a baseline is reproducible: per-kind
/// slopes are finite, R² is within [0, 1], and the modeled prediction for
/// a serial run degenerates to something near its measured time (the
/// fit's whole job).
#[test]
fn calibration_fit_is_well_formed() {
    let c = single_threaded_cluster(2, 1 << 13);
    let data = topk_datagen::uniform(1 << 16, 9);
    let got = distributed_dr_topk_executor(
        &c,
        &data,
        64,
        &DrTopKConfig::default(),
        ReloadSchedule::DoubleBuffered,
        Executor::Threaded,
    );
    let fit = &got.stages.calibration;
    assert!(!fit.fits.is_empty());
    for kf in &fit.fits {
        assert!(kf.samples > 0);
        // OLS on jittery sub-microsecond stages may fit a negative slope;
        // `predict` clamps at zero, the raw coefficient just has to be a
        // number.
        assert!(kf.slope.is_finite());
        assert!(kf.intercept_ms.is_finite());
        assert!((0.0..=1.0).contains(&kf.r2), "R² out of range: {}", kf.r2);
    }
    // Every stage's prediction is non-negative and finite.
    for s in &got.stages.stages {
        let p = fit.predict_stage_ms(s);
        assert!(p.is_finite() && p >= 0.0);
    }
    let predicted = fit.predicted_makespan_ms(&got.stages);
    assert!(predicted.is_finite() && predicted >= 0.0);
}
