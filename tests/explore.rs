//! Schedule-space model-checker integration tests (`drtopk::core::explore`):
//! the threaded executor's determinism claim is checked by *running* every
//! dispatch order its per-resource FIFO workers could take and requiring
//! bit-identical results — and a seeded concurrency bug (a missing
//! dependency edge between stages on different resources) is detected as a
//! cross-interleaving divergence that no single run could expose.

use std::sync::atomic::{AtomicU64, Ordering};

use drtopk::core::{
    distributed_dr_topk_executor, distributed_dr_topk_explore, distributed_dr_topk_scheduled,
    explore_schedules, DrTopKConfig, Executor, ExploreBudget, ReloadSchedule, Resource, StageGraph,
    StageKind, StageOutcome,
};
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;

fn bits<K: TopKKey>(values: &[K]) -> Vec<K::Bits> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Two independent two-stage chains on different compute queues joined by
/// a final top-k. The join always dispatches last, so the schedule space
/// is exactly the interleavings of the two FIFO chains: C(4,2) = 6.
/// Stages accumulate into a commutative checksum, so every interleaving
/// must fingerprint identically.
fn two_chains(sum: &AtomicU64) -> (StageGraph<'_, ()>, ()) {
    let mut g: StageGraph<()> = StageGraph::new();
    let c0 = Resource::Compute(0);
    let c1 = Resource::Compute(1);
    let add = |amount: u64| {
        move |_: &()| {
            sum.fetch_add(amount, Ordering::SeqCst);
            StageOutcome::default()
        }
    };
    let a0 = g.add(StageKind::LocalTopK, c0, &[], add(1));
    let a1 = g.add(StageKind::LocalMerge, c0, &[a0], add(2));
    let b0 = g.add(StageKind::LocalTopK, c1, &[], add(10));
    let b1 = g.add(StageKind::LocalMerge, c1, &[b0], add(20));
    g.add(StageKind::FinalTopK, c0, &[a1, b1], add(100));
    (g, ())
}

#[test]
fn exhaustive_enumeration_covers_exactly_the_reachable_orders() {
    let sum = AtomicU64::new(0);
    let outcome = explore_schedules(
        || two_chains(&sum),
        |_, report| {
            // The commutative checksum and the modeled schedule must agree
            // across interleavings; reset between schedules.
            (sum.swap(0, Ordering::SeqCst), report.stages.len())
        },
        ExploreBudget::default(),
    )
    .expect("a correct graph has no diverging interleaving");
    assert_eq!(
        outcome.schedules_run, 6,
        "two FIFO chains interleave C(4,2) ways"
    );
    assert!(outcome.exhaustive);
    assert_eq!(outcome.stages, 5);
}

#[test]
fn enumeration_caps_report_non_exhaustive_coverage() {
    let sum = AtomicU64::new(0);
    let outcome = explore_schedules(
        || two_chains(&sum),
        |_, _| sum.swap(0, Ordering::SeqCst),
        ExploreBudget::Exhaustive { max_schedules: 3 },
    )
    .expect("capped exploration still must not diverge");
    assert_eq!(outcome.schedules_run, 3);
    assert!(!outcome.exhaustive);
}

#[test]
fn sampled_exploration_is_bounded_and_reproducible() {
    let sum = AtomicU64::new(0);
    let budget = ExploreBudget::Sampled {
        schedules: 5,
        seed: 7,
    };
    let outcome = explore_schedules(
        || two_chains(&sum),
        |_, _| sum.swap(0, Ordering::SeqCst),
        budget,
    )
    .expect("sampled orders are valid dispatch orders");
    assert_eq!(outcome.schedules_run, 5);
    assert!(!outcome.exhaustive);
}

/// The seeded concurrency bug the static verifier *cannot* see: a reader
/// on device 1 races a writer on device 0 because the dependency edge
/// between them was dropped. The graph still verifies clean (the reader
/// legitimately might not need the writer), every individual run looks
/// fine — only comparing interleavings exposes it.
#[test]
fn missing_dependency_edge_is_detected_as_a_divergence() {
    let value = AtomicU64::new(0);
    let observed = AtomicU64::new(u64::MAX);
    let err = explore_schedules(
        || {
            value.store(0, Ordering::SeqCst);
            let mut g: StageGraph<()> = StageGraph::new();
            let writer = g.add(StageKind::LocalTopK, Resource::Compute(0), &[], |_| {
                value.store(42, Ordering::SeqCst);
                StageOutcome::default()
            });
            // BUG under test: the reader must depend on `writer` but does
            // not, so whichever worker dispatches first wins the race.
            let reader = g.add(StageKind::LocalTopK, Resource::Compute(1), &[], |_| {
                observed.store(value.load(Ordering::SeqCst), Ordering::SeqCst);
                StageOutcome::default()
            });
            g.add(
                StageKind::FinalTopK,
                Resource::Compute(0),
                &[writer, reader],
                |_| StageOutcome::default(),
            );
            (g, ())
        },
        |_, _| observed.load(Ordering::SeqCst),
        ExploreBudget::default(),
    )
    .expect_err("the racy read must diverge across interleavings");
    assert_eq!(err.what, "result fingerprint");
    assert!(err.schedule_index > 0, "schedule 0 is the reference");
    assert_eq!(
        err.order.len(),
        3,
        "the diverging order is a full dispatch order"
    );
}

/// Model-check a real distributed out-of-core run: 2 devices × 2 chunks
/// under the double-buffered schedule. The full schedule space (a few
/// hundred orders) is enumerated and every interleaving must produce
/// bit-identical winners and a byte-identical deterministic summary.
#[test]
fn distributed_out_of_core_run_model_checks_exhaustively() {
    let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
    for d in cluster.devices() {
        d.set_capacity_elems(1 << 8);
    }
    let data = topk_datagen::uniform(1 << 10, 0xBEEF);
    let cfg = DrTopKConfig::default();
    let (result, outcome) = distributed_dr_topk_explore(
        &cluster,
        &data,
        16,
        &cfg,
        ReloadSchedule::DoubleBuffered,
        ExploreBudget::default(),
    )
    .expect("no interleaving of a correct plan may diverge");
    assert!(
        outcome.exhaustive,
        "the smoke graph's schedule space fits the default cap"
    );
    assert!(outcome.schedules_run > 1);
    assert_eq!(outcome.stages, outcome.reference.stages.len());

    let reference =
        distributed_dr_topk_scheduled(&cluster, &data, 16, &cfg, ReloadSchedule::DoubleBuffered);
    assert_eq!(bits(&result.values), bits(&reference.values));
}

/// Two per-shard radix chains (histogram → refine → gather → select) on
/// different compute queues — the shape the capability-aware distributed
/// planner emits when it places radix-routed shards on two devices. Each
/// chain really narrows its shard to the top element by most-significant
/// digit. The graph verifies clean (both `RadixSelect`s are legal sinks),
/// its schedule space is exactly the C(8,4) = 70 interleavings of the two
/// FIFO chains, and every interleaving must produce bit-identical winners.
#[test]
fn multi_resource_radix_graph_model_checks_exhaustively() {
    use parking_lot::Mutex;

    let shard0 = topk_datagen::uniform(256, 0xFEED);
    let shard1 = topk_datagen::uniform(256, 0xFACE);
    struct Chain {
        candidates: Vec<u32>,
        digit: u32,
        winner: u64,
    }
    let state: Mutex<[Chain; 2]> = Mutex::new([&shard0, &shard1].map(|s| Chain {
        candidates: s.clone(),
        digit: 0,
        winner: 0,
    }));

    let outcome = explore_schedules(
        || {
            {
                let mut chains = state.lock();
                chains[0].candidates = shard0.clone();
                chains[1].candidates = shard1.clone();
            }
            let mut g: StageGraph<()> = StageGraph::new();
            for chain in 0..2usize {
                let q = Resource::Compute(chain);
                let hist = g.add(StageKind::RadixHistogram, q, &[], {
                    let state = &state;
                    move |_: &()| {
                        let mut chains = state.lock();
                        let c = &mut chains[chain];
                        c.digit = c.candidates.iter().map(|x| x >> 24).max().unwrap();
                        StageOutcome::default()
                    }
                });
                let refine = g.add(StageKind::RadixRefine, q, &[hist], {
                    let state = &state;
                    move |_: &()| {
                        let mut chains = state.lock();
                        let c = &mut chains[chain];
                        let digit = c.digit;
                        c.candidates.retain(|x| x >> 24 == digit);
                        StageOutcome::default()
                    }
                });
                let gather = g.add(StageKind::CandidateGather, q, &[refine], {
                    let state = &state;
                    move |_: &()| {
                        let mut chains = state.lock();
                        chains[chain].candidates.sort_unstable_by(|a, b| b.cmp(a));
                        StageOutcome::default()
                    }
                });
                g.add(StageKind::RadixSelect, q, &[gather], {
                    let state = &state;
                    move |_: &()| {
                        let mut chains = state.lock();
                        let c = &mut chains[chain];
                        c.winner = u64::from(c.candidates[0]);
                        StageOutcome::default()
                    }
                });
            }
            assert!(
                g.verify().is_empty(),
                "the two-shard radix graph must verify clean"
            );
            (g, ())
        },
        |_, report| {
            let chains = state.lock();
            (chains[0].winner, chains[1].winner, report.stages.len())
        },
        ExploreBudget::default(),
    )
    .expect("a correct two-shard radix plan has no diverging interleaving");
    assert_eq!(
        outcome.schedules_run, 70,
        "two 4-stage FIFO chains interleave C(8,4) ways"
    );
    assert!(outcome.exhaustive);
    assert_eq!(outcome.stages, 8);

    // The narrowed winners are the true per-shard maxima.
    let chains = state.lock();
    assert_eq!(chains[0].winner, u64::from(*shard0.iter().max().unwrap()));
    assert_eq!(chains[1].winner, u64::from(*shard1.iter().max().unwrap()));
}

/// `Executor::Explore` (the single adversarial anti-insertion-order probe)
/// must agree with the threaded executor bit for bit, modeled field for
/// modeled field.
#[test]
fn adversarial_executor_matches_threaded_on_a_distributed_run() {
    let cluster = GpuCluster::homogeneous(2, DeviceSpec::v100s());
    for d in cluster.devices() {
        d.set_capacity_elems(1 << 9);
    }
    let data = topk_datagen::normal(1 << 11, 17);
    let cfg = DrTopKConfig::default();
    let threaded = distributed_dr_topk_executor(
        &cluster,
        &data,
        64,
        &cfg,
        ReloadSchedule::DoubleBuffered,
        Executor::Threaded,
    );
    let adversarial = distributed_dr_topk_executor(
        &cluster,
        &data,
        64,
        &cfg,
        ReloadSchedule::DoubleBuffered,
        Executor::Explore,
    );
    assert_eq!(bits(&threaded.values), bits(&adversarial.values));
    assert_eq!(
        threaded.stages.deterministic_summary(),
        adversarial.stages.deterministic_summary()
    );
    assert_eq!(threaded.total_ms, adversarial.total_ms);
}
