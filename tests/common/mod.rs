//! Shared test-support helpers for the workspace integration suites.
//!
//! Every suite used to carry its own copy of `device()` / `cluster()` /
//! `bits()`; they live here once so the suites cannot drift apart (a
//! simulator change that needs a different default shows up in exactly one
//! place). The simulated results are host-thread-count independent, so the
//! shared [`device`] settles on 2 host threads for everyone.
//!
//! Each binary test target compiles this module independently and uses a
//! different subset of it, hence the file-level `dead_code` allow.
#![allow(dead_code)]

use drtopk::core::Executor;
use drtopk::prelude::*;
use drtopk::sim::GpuCluster;

/// The standard single test device: a V100S with 2 host worker threads.
/// Simulator results are independent of the host thread count, so tests
/// that used 4 threads historically get identical answers here.
pub fn device() -> Device {
    Device::with_host_threads(DeviceSpec::v100s(), 2)
}

/// A homogeneous V100S cluster with every device clamped to `capacity`
/// elements, for out-of-core / chunked execution tests.
pub fn cluster(devices: usize, capacity: usize) -> GpuCluster {
    let c = GpuCluster::homogeneous(devices, DeviceSpec::v100s());
    for d in c.devices() {
        d.set_capacity_elems(capacity);
    }
    c
}

/// A serving engine over a homogeneous V100S pool of `devices` workers.
pub fn engine(devices: usize) -> TopKEngine {
    TopKEngine::new(GpuCluster::homogeneous(devices, DeviceSpec::v100s()))
}

/// Order-preserving bit images of a key slice, so NaN (which is `!=`
/// itself as a float) still compares as a concrete multiset element.
pub fn bits<K: TopKKey>(values: &[K]) -> Vec<K::Bits> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Reference top-k in either direction, returned as bit images ready for
/// `assert_eq!` against a pipeline result.
pub fn reference_bits<K: TopKKey>(data: &[K], k: usize, largest: bool) -> Vec<K::Bits> {
    let reference = if largest {
        topk_baselines::reference_topk(data, k)
    } else {
        topk_baselines::reference_topk_min(data, k)
    };
    bits(&reference)
}

/// A deterministic uniformly-distributed `u32` corpus.
pub fn seeded_corpus(n: usize, seed: u64) -> Vec<u32> {
    topk_datagen::uniform(n, seed)
}

/// The stage-graph executor the suite should run under, switched by the
/// `DRTOPK_TEST_EXECUTOR` environment variable (`serial` / `threaded`).
/// CI runs the executor-sensitive suites once per value; the default is
/// the production `Threaded` executor.
pub fn test_executor() -> Executor {
    match std::env::var("DRTOPK_TEST_EXECUTOR").as_deref() {
        Ok("serial") => Executor::Serial,
        Ok("threaded") | Err(_) => Executor::Threaded,
        Ok(other) => panic!("DRTOPK_TEST_EXECUTOR must be `serial` or `threaded`, got `{other}`"),
    }
}
