//! Golden-value regression tests for the dataset generators.
//!
//! The evaluation harness, the correctness tests and the figures all assume
//! `topk_datagen::generate` is a pure function of `(distribution, n, seed)`.
//! These tests freeze the element sum and the reference top-k of every
//! [`Distribution`] at two fixed `(n, seed)` points, so any drift in the RNG
//! stream, the chunked parallel fill, or a distribution's shape is caught
//! here — independently of the top-k algorithms under test.
//!
//! If a PR changes these values **intentionally** (e.g. a new generation
//! scheme), re-derive the constants with the snippet in each test and say so
//! in the PR description; silent drift is the failure mode this file exists
//! to catch.

use drtopk::prelude::*;
use topk_baselines::reference_topk;
use topk_datagen::generate;

/// (distribution, element sum, reference top-8) at n = 2^16, seed = 0x5eed.
const GOLDEN_N16_SEED_0X5EED: &[(Distribution, u64, &[u32])] = &[
    (
        Distribution::Uniform,
        141_017_943_632_819,
        &[
            4294764799, 4294748075, 4294721171, 4294717939, 4294711679, 4294685858, 4294652949,
            4294530103,
        ],
    ),
    (
        Distribution::Normal,
        6_553_599_967_817,
        &[
            100000054, 100000040, 100000040, 100000039, 100000039, 100000038, 100000038, 100000038,
        ],
    ),
    (
        Distribution::Customized,
        264_968_207_592_427,
        &[
            4294967295, 4294967295, 4294967295, 4294967295, 4294967295, 4294967295, 4294967295,
            4294967295,
        ],
    ),
    (
        Distribution::AnnSift,
        94_121_592_777,
        &[
            2011773, 1995975, 1991436, 1963489, 1956926, 1955429, 1951893, 1948198,
        ],
    ),
    (
        Distribution::WebDegrees,
        1_798_786,
        &[1196828, 182345, 10426, 9129, 5424, 5191, 3342, 3256],
    ),
    (
        Distribution::TwitterFear,
        1_651_456_680,
        &[98915, 98915, 98915, 98915, 98915, 98915, 98915, 98915],
    ),
];

/// (distribution, element sum, reference top-4) at n = 4096, seed = 7 —
/// a second point so seed- and size-handling drift can't cancel out.
const GOLDEN_N4096_SEED_7: &[(Distribution, u64, &[u32])] = &[
    (
        Distribution::Uniform,
        8_874_946_795_209,
        &[4294615955, 4293831171, 4291940733, 4291837170],
    ),
    (
        Distribution::Normal,
        409_599_997_958,
        &[100000037, 100000036, 100000034, 100000033],
    ),
    (
        Distribution::Customized,
        16_632_285_510_860,
        &[4294967295, 4294967295, 4294967295, 4294967295],
    ),
    (
        Distribution::AnnSift,
        6_437_160_019,
        &[2140448, 2090710, 2073737, 2072681],
    ),
    (Distribution::WebDegrees, 22_099, &[1890, 649, 518, 472]),
    (
        Distribution::TwitterFear,
        99_998_936,
        &[99424, 99424, 99424, 99424],
    ),
];

fn check(golden: &[(Distribution, u64, &[u32])], n: usize, seed: u64, k: usize) {
    for &(dist, expected_sum, expected_topk) in golden {
        let data = generate(dist, n, seed);
        assert_eq!(data.len(), n, "{dist:?}: wrong length");
        let sum: u64 = data.iter().map(|&x| x as u64).sum();
        assert_eq!(
            sum, expected_sum,
            "{dist:?}: element sum drifted at n={n} seed={seed} — the RNG \
             stream or distribution shape changed"
        );
        assert_eq!(
            reference_topk(&data, k),
            expected_topk,
            "{dist:?}: reference top-{k} drifted at n={n} seed={seed}"
        );
    }
}

#[test]
fn golden_values_at_n16_seed_0x5eed() {
    check(GOLDEN_N16_SEED_0X5EED, 1 << 16, 0x5eed, 8);
}

#[test]
fn golden_values_at_n4096_seed_7() {
    check(GOLDEN_N4096_SEED_7, 4096, 7, 4);
}

#[test]
fn every_distribution_has_a_golden_entry() {
    // Adding a new Distribution variant must extend the golden tables.
    for dist in Distribution::ALL {
        assert!(
            GOLDEN_N16_SEED_0X5EED.iter().any(|&(d, _, _)| d == dist),
            "{dist:?} missing from GOLDEN_N16_SEED_0X5EED"
        );
        assert!(
            GOLDEN_N4096_SEED_7.iter().any(|&(d, _, _)| d == dist),
            "{dist:?} missing from GOLDEN_N4096_SEED_7"
        );
    }
}

/// Freeze the f32 generators the same way the u32 table does: the sum of
/// the raw IEEE bit patterns (exact, no float accumulation error) plus the
/// leading elements and the value extremes. Shortest-round-trip float
/// literals are exact, so `==` comparisons are well-defined.
#[test]
fn golden_values_for_f32_generators() {
    struct GoldenF32 {
        name: &'static str,
        data: Vec<f32>,
        bit_sum: u64,
        first4: [f32; 4],
        top2: [f32; 2],
        bottom2: [f32; 2],
    }
    let n = 1 << 14;
    let seed = 0x5eed;
    let golden = [
        GoldenF32 {
            name: "ann_sift_distances_f32",
            data: topk_datagen::ann_sift_distances_f32(n, seed),
            bit_sum: 18_852_323_550_790,
            first4: [1215.8055, 1229.0284, 1166.1707, 1188.2441],
            top2: [1418.3699, 1397.1017],
            bottom2: [946.5252, 970.4015],
        },
        GoldenF32 {
            name: "bm25_scores",
            data: topk_datagen::bm25_scores(n, seed),
            bit_sum: 17_371_223_988_974,
            first4: [0.87684166, 0.9937564, 0.27444315, 0.19203827],
            top2: [15.561915, 15.128056],
            bottom2: [1.5006526e-5, 7.306921e-5],
        },
        GoldenF32 {
            name: "uniform_f32",
            data: topk_datagen::uniform_f32(n, seed),
            bit_sum: 17_250_265_303_168,
            first4: [0.5470755, 0.55744356, 0.60146374, 0.09155959],
            top2: [0.9999268, 0.9996759],
            bottom2: [0.00019031763, 0.00026118755],
        },
    ];
    for g in golden {
        assert_eq!(g.data.len(), n, "{}: wrong length", g.name);
        let bit_sum: u64 = g.data.iter().map(|x| x.to_bits() as u64).sum();
        assert_eq!(
            bit_sum, g.bit_sum,
            "{}: bit sum drifted at n={n} seed={seed} — the RNG stream or \
             distribution shape changed",
            g.name
        );
        assert_eq!(
            &g.data[..4],
            &g.first4,
            "{}: leading values drifted",
            g.name
        );
        assert_eq!(
            topk_baselines::reference_topk(&g.data, 2),
            g.top2,
            "{}: top-2 drifted",
            g.name
        );
        assert_eq!(
            topk_baselines::reference_topk_min(&g.data, 2),
            g.bottom2,
            "{}: bottom-2 drifted",
            g.name
        );
    }
}

/// Freeze the MoE gating-logit generator the same way: exact bit sums
/// (whole matrix and the first/last rows, so a row-boundary bug can't hide
/// in the total) plus reference per-row top-2 shortlists, at two
/// `(rows, experts, temperature, seed)` points. Re-derive after an
/// intentional change with, e.g.:
///
/// ```ignore
/// let d = topk_datagen::moe_gating_logits(32, 64, 1.0, 0x5eed);
/// println!("{}", d.iter().map(|x| x.to_bits() as u64).sum::<u64>());
/// println!("{:?}", topk_baselines::reference_topk(&d[..64], 2));
/// ```
#[test]
fn golden_values_for_moe_gating_logits() {
    struct GoldenMoe {
        rows: usize,
        experts: usize,
        temperature: f32,
        seed: u64,
        bit_sum: u64,
        row0_bit_sum: u64,
        rowlast_bit_sum: u64,
        first4: [f32; 4],
        row0_top2: [f32; 2],
        rowlast_top2: [f32; 2],
    }
    let golden = [
        GoldenMoe {
            rows: 32,
            experts: 64,
            temperature: 1.0,
            seed: 0x5eed,
            bit_sum: 4_212_347_153_078,
            row0_bit_sum: 136_495_123_541,
            rowlast_bit_sum: 127_618_118_488,
            first4: [6.8413, -0.38786918, 0.8460462, 0.5486199],
            row0_top2: [6.8413, 6.526089],
            rowlast_top2: [8.544676, 4.279567],
        },
        GoldenMoe {
            rows: 8,
            experts: 16,
            temperature: 0.5,
            seed: 7,
            bit_sum: 244_493_484_633,
            row0_bit_sum: 32_149_892_529,
            rowlast_bit_sum: 38_609_241_038,
            first4: [3.0943, -0.3715955, 1.7290108, 2.4709342],
            row0_top2: [15.629029, 3.0943],
            rowlast_top2: [12.505009, 8.484611],
        },
    ];
    for g in golden {
        let tag = format!(
            "moe_gating_logits({}, {}, {}, {:#x})",
            g.rows, g.experts, g.temperature, g.seed
        );
        let data = topk_datagen::moe_gating_logits(g.rows, g.experts, g.temperature, g.seed);
        assert_eq!(data.len(), g.rows * g.experts, "{tag}: wrong shape");
        let bits = |row: &[f32]| row.iter().map(|x| x.to_bits() as u64).sum::<u64>();
        assert_eq!(
            bits(&data),
            g.bit_sum,
            "{tag}: bit sum drifted — the RNG stream, hot-expert boost or \
             temperature scaling changed"
        );
        assert_eq!(bits(&data[..g.experts]), g.row0_bit_sum, "{tag}: row 0");
        assert_eq!(
            bits(&data[(g.rows - 1) * g.experts..]),
            g.rowlast_bit_sum,
            "{tag}: last row"
        );
        assert_eq!(&data[..4], &g.first4, "{tag}: leading logits drifted");
        assert_eq!(
            topk_baselines::reference_topk(&data[..g.experts], 2),
            g.row0_top2,
            "{tag}: row 0 top-2 drifted"
        );
        assert_eq!(
            topk_baselines::reference_topk(&data[(g.rows - 1) * g.experts..], 2),
            g.rowlast_top2,
            "{tag}: last row top-2 drifted"
        );
    }
}

#[test]
fn generation_spans_chunk_boundaries_deterministically() {
    // The parallel fill derives one RNG stream per 2^18-element chunk; a
    // multi-chunk vector must be the concatenation of the same streams
    // regardless of worker count, and its prefix must NOT equal the
    // shorter-vector generation (chunk seeds are index-based).
    let big = generate(Distribution::Uniform, (1 << 18) + 1024, 0x5eed);
    let again = generate(Distribution::Uniform, (1 << 18) + 1024, 0x5eed);
    assert_eq!(big, again, "multi-chunk generation must be deterministic");
    let small = generate(Distribution::Uniform, 1 << 16, 0x5eed);
    assert_eq!(
        &big[..1 << 16],
        &small[..],
        "chunk-0 stream must be independent of total length"
    );
}

/// Freeze the low-entropy adversarial generator (the radix worst case the
/// `large_k_sweep` bench leans on). The element sum pins the joint palette
/// histogram — every palette value `u32::MAX − i` has a distinct weight in
/// the sum, so a drifted draw distribution cannot cancel out — and the
/// palette-shape assertions pin the contiguous-top-of-range construction
/// itself. Re-derive after an intentional change with:
///
/// ```ignore
/// let v = topk_datagen::low_entropy(1 << 16, 16, 0x5eed);
/// println!("{}", v.iter().map(|&x| x as u64).sum::<u64>());
/// ```
#[test]
fn golden_values_for_low_entropy() {
    let v = topk_datagen::low_entropy(1 << 16, topk_datagen::LOW_ENTROPY_DISTINCT, 0x5eed);
    let sum: u64 = v.iter().map(|&x| x as u64).sum();
    assert_eq!(
        sum, 281_474_976_152_546,
        "low_entropy element sum drifted at n=2^16 d=16 seed=0x5eed"
    );
    // with ~4096 copies per palette value, the top-8 is a pure tie at MAX
    assert_eq!(reference_topk(&v, 8), vec![u32::MAX; 8]);
    assert!(v.iter().all(|&x| x >= u32::MAX - 15));

    let w = topk_datagen::low_entropy(4096, 3, 7);
    let sum_w: u64 = w.iter().map(|&x| x as u64).sum();
    assert_eq!(
        sum_w, 17_592_186_036_183,
        "low_entropy element sum drifted at n=4096 d=3 seed=7"
    );
    assert_eq!(reference_topk(&w, 4), vec![u32::MAX; 4]);
}
