//! Documentation drift checks: the enums that documentation tabulates are
//! matched *exhaustively* here, so adding a variant without updating the
//! docs fails the suite (and forgetting to extend the `ALL` constants
//! fails these tests' completeness assertions).
//!
//! * Every [`StageKind`] variant must appear (backticked) in
//!   `docs/PAPER_MAP.md`'s stage table.
//! * Every [`DiagnosticCode`] must appear in `docs/DIAGNOSTICS.md` with
//!   its code string, kebab-case name and variant name.
//! * Every [`MetricName`] must have a row (backticked snake_case name) in
//!   `docs/OBSERVABILITY.md`'s metric catalog, and every row there must
//!   name a live metric.

use drtopk::core::{DiagnosticCode, StageKind};
use drtopk::obs::MetricName;

const PAPER_MAP: &str = include_str!("../docs/PAPER_MAP.md");
const DIAGNOSTICS: &str = include_str!("../docs/DIAGNOSTICS.md");
const OBSERVABILITY: &str = include_str!("../docs/OBSERVABILITY.md");

/// Compile-time exhaustiveness: the `match` must name every variant, so a
/// new `StageKind` cannot ship without this function (and therefore the
/// docs check below) knowing about it.
fn stage_kind_index(kind: StageKind) -> usize {
    match kind {
        StageKind::DelegateConstruction => 0,
        StageKind::FirstTopK => 1,
        StageKind::Concatenate => 2,
        StageKind::SecondTopK => 3,
        StageKind::BucketTopKPrime => 4,
        StageKind::ChunkLoad => 5,
        StageKind::LocalTopK => 6,
        StageKind::LocalMerge => 7,
        StageKind::Gather => 8,
        StageKind::FinalTopK => 9,
        StageKind::RadixHistogram => 10,
        StageKind::RadixRefine => 11,
        StageKind::CandidateGather => 12,
        StageKind::RadixSelect => 13,
    }
}

/// Same mechanism for diagnostic codes.
fn diagnostic_code_index(code: DiagnosticCode) -> usize {
    match code {
        DiagnosticCode::DanglingDep => 0,
        DiagnosticCode::DepCycle => 1,
        DiagnosticCode::OrphanStage => 2,
        DiagnosticCode::ResourceKindMismatch => 3,
        DiagnosticCode::WrongLane => 4,
        DiagnosticCode::CrossDeviceChunk => 5,
        DiagnosticCode::GatherWithoutSource => 6,
        DiagnosticCode::GatherSourceMismatch => 7,
        DiagnosticCode::QueueDeadlock => 8,
        DiagnosticCode::DoubleBufferHazard => 9,
        DiagnosticCode::PhaseOrder => 10,
        DiagnosticCode::RadixChainBroken => 11,
    }
}

/// And for the metric catalog: `MetricsRegistry::snapshot()` matches the
/// enum exhaustively on the export side; this is the documentation side.
fn metric_name_index(name: MetricName) -> usize {
    match name {
        MetricName::PlanCacheHits => 0,
        MetricName::PlanCacheMisses => 1,
        MetricName::DelegateCacheHits => 2,
        MetricName::DelegateCacheMisses => 3,
        MetricName::DelegatePassesRun => 4,
        MetricName::DelegatePassesSaved => 5,
        MetricName::QueriesServed => 6,
        MetricName::BatchesServed => 7,
        MetricName::ShardedQueries => 8,
        MetricName::EngineBusyMs => 9,
        MetricName::QueryLatencyMs => 10,
        MetricName::BatchMakespanMs => 11,
        MetricName::WorkerBusyMs => 12,
        MetricName::WorkerOccupancy => 13,
        MetricName::WorkerQueueDepth => 14,
        MetricName::StageResidualMs => 15,
    }
}

#[test]
fn all_constants_are_complete_and_ordered() {
    // `ALL` must cover every variant exactly once, in declaration order —
    // the exhaustive index functions above prove nothing is missing.
    for (i, kind) in StageKind::ALL.into_iter().enumerate() {
        assert_eq!(
            stage_kind_index(kind),
            i,
            "StageKind::ALL out of order at {i}"
        );
    }
    for (i, code) in DiagnosticCode::ALL.into_iter().enumerate() {
        assert_eq!(
            diagnostic_code_index(code),
            i,
            "DiagnosticCode::ALL out of order at {i}"
        );
    }
    for (i, name) in MetricName::ALL.into_iter().enumerate() {
        assert_eq!(
            metric_name_index(name),
            i,
            "MetricName::ALL out of order at {i}"
        );
    }
}

#[test]
fn every_stage_kind_is_documented_in_the_paper_map() {
    for kind in StageKind::ALL {
        let needle = format!("`{kind:?}`");
        assert!(
            PAPER_MAP.contains(&needle),
            "docs/PAPER_MAP.md does not mention stage kind {needle}; \
             extend its execution-stage table"
        );
    }
}

#[test]
fn every_diagnostic_code_is_documented() {
    for code in DiagnosticCode::ALL {
        for needle in [
            format!("`{}`", code.code()),
            format!("`{}`", code.name()),
            format!("`{code:?}`"),
        ] {
            assert!(
                DIAGNOSTICS.contains(&needle),
                "docs/DIAGNOSTICS.md does not mention {needle} for {code}; \
                 extend its table"
            );
        }
    }
}

#[test]
fn every_metric_is_documented_in_the_catalog() {
    for name in MetricName::ALL {
        let needle = format!("| `{}` |", name.name());
        assert!(
            OBSERVABILITY.contains(&needle),
            "docs/OBSERVABILITY.md has no metric-catalog row for {needle}; \
             extend the table"
        );
    }
}

#[test]
fn diagnostics_doc_has_no_stale_codes() {
    // The reverse direction: a documented V0xx code must exist in the
    // source. Scan the table's code column for backticked V-codes.
    let known: Vec<String> = DiagnosticCode::ALL
        .iter()
        .map(|c| format!("`{}`", c.code()))
        .collect();
    for line in DIAGNOSTICS.lines() {
        let Some(rest) = line.strip_prefix("| `V") else {
            continue;
        };
        let code = format!("`V{}`", &rest[..rest.find('`').unwrap_or(0)]);
        assert!(
            known.contains(&code),
            "docs/DIAGNOSTICS.md documents {code}, which no DiagnosticCode produces"
        );
    }
}

#[test]
fn observability_doc_has_no_stale_metrics() {
    // Reverse direction for the metric catalog: every backticked table row
    // in docs/OBSERVABILITY.md must name a metric the registry exports.
    let known: Vec<String> = MetricName::ALL.iter().map(|m| format!("`{m}`")).collect();
    for line in OBSERVABILITY.lines() {
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let name = format!("`{}`", &rest[..rest.find('`').unwrap_or(0)]);
        assert!(
            known.contains(&name),
            "docs/OBSERVABILITY.md documents {name}, which no MetricName produces"
        );
    }
}
