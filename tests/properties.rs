//! Property-based tests (proptest) of the paper's rules and of the core data
//! structures' invariants.

use drtopk::core::{
    build_delegate_vector, dr_topk, first_topk, flag_radix_select_kth, flag_radix_topk,
    rule4_alpha, ConstructionMethod, DrTopKConfig, FlagSelectConfig,
};
use drtopk::prelude::*;
use proptest::prelude::*;
use topk_baselines::{reference_kth, reference_topk};

fn device() -> Device {
    Device::with_host_threads(DeviceSpec::v100s(), 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dr. Top-k returns exactly the reference top-k for arbitrary vectors,
    /// k, α, β and filtering choices (Rules 1–3 never lose an element).
    #[test]
    fn drtopk_equals_reference(
        data in proptest::collection::vec(any::<u32>(), 1..4000),
        k_frac in 0.0f64..1.0,
        alpha in 2u32..8,
        beta in 1usize..4,
        filtering in any::<bool>(),
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        let config = DrTopKConfig {
            alpha: Some(alpha),
            beta,
            filtering,
            ..DrTopKConfig::default()
        };
        let got = dr_topk(&device, &data, k, &config);
        prop_assert_eq!(got.values, reference_topk(&data, k));
    }

    /// The flag-based radix selection finds exactly the k-th largest value.
    #[test]
    fn flag_radix_select_equals_reference(
        data in proptest::collection::vec(any::<u32>(), 1..3000),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        let got = flag_radix_select_kth(&device, &data, k, &FlagSelectConfig::default());
        prop_assert_eq!(got.threshold, reference_kth(&data, k));
        let topk = flag_radix_topk(&device, &data, k);
        prop_assert_eq!(topk.values, reference_topk(&data, k));
    }

    /// Rule 2: the k-th delegate never exceeds the k-th element of V, so
    /// filtering by it can never discard a true top-k element.
    #[test]
    fn rule2_threshold_is_a_lower_bound(
        data in proptest::collection::vec(any::<u32>(), 64..3000),
        alpha in 2u32..7,
        beta in 1usize..3,
        k in 1usize..64,
    ) {
        let device = device();
        let k = k.min(data.len());
        let delegates = build_delegate_vector(&device, &data, alpha, beta, ConstructionMethod::Auto);
        // Rule 2 presupposes that the k-th delegate exists (k <= |D|); the
        // pipeline falls back to a plain top-k otherwise.
        prop_assume!(k <= delegates.len());
        let first = first_topk(&device, &delegates, k, false);
        let true_kth = reference_kth(&data, k);
        prop_assert!(first.threshold <= true_kth,
            "delegate threshold {} must not exceed the true k-th {}", first.threshold, true_kth);
    }

    /// Delegate construction is exact: the β delegates of every subrange are
    /// its β largest elements, and both construction kernels agree.
    #[test]
    fn delegate_construction_is_exact(
        data in proptest::collection::vec(any::<u32>(), 1..2000),
        alpha in 2u32..7,
        beta in 1usize..4,
    ) {
        let device = device();
        let warp = build_delegate_vector(&device, &data, alpha, beta, ConstructionMethod::WarpShuffle);
        let shared = build_delegate_vector(&device, &data, alpha, beta, ConstructionMethod::CoalescedShared);
        prop_assert_eq!(&warp.values, &shared.values);
        prop_assert_eq!(&warp.subrange_ids, &shared.subrange_ids);
        let size = 1usize << alpha;
        for (s, chunk) in data.chunks(size).enumerate() {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted.truncate(beta);
            let got: Vec<u32> = warp.values.iter().zip(&warp.subrange_ids)
                .filter(|&(_, &id)| id as usize == s)
                .map(|(&v, _)| v)
                .collect();
            prop_assert_eq!(got, sorted, "subrange {}", s);
        }
    }

    /// Rule 4 behaves monotonically: α never increases when k grows and
    /// never decreases when |V| grows.
    #[test]
    fn rule4_monotonicity(
        n_exp in 10u32..31,
        k_exp in 0u32..24,
        const_term in 0.0f64..4.0,
    ) {
        prop_assume!(k_exp < n_exp);
        let n = 1usize << n_exp;
        let k = 1usize << k_exp;
        let a = rule4_alpha(n, k, const_term);
        prop_assert!(rule4_alpha(n * 2, k, const_term) >= a);
        if k >= 2 {
            prop_assert!(rule4_alpha(n, k / 2, const_term) >= a);
        }
    }

    /// The baselines agree with each other on arbitrary data (differential
    /// testing of radix vs bucket vs bitonic).
    #[test]
    fn baselines_agree(
        data in proptest::collection::vec(any::<u32>(), 1..2500),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        let expected = reference_topk(&data, k);
        let radix = radix_topk(&device, &data, k, &topk_baselines::RadixConfig::default());
        let bucket = bucket_topk(&device, &data, k, &topk_baselines::BucketConfig::default());
        let bitonic = bitonic_topk(&device, &data, k, &topk_baselines::BitonicConfig::default());
        prop_assert_eq!(radix.values, expected.clone());
        prop_assert_eq!(bucket.values, expected.clone());
        prop_assert_eq!(bitonic.values, expected);
    }
}

// ---------------------------------------------------------------------------
// Generic-key properties: every TopKKey impl must drive dr_topk, every
// baseline and the flag-based select to the same answer as the CPU
// reference, including float specials (NaN / ±0 / ±∞), i64 negatives and
// u64 values with high bits set.
// ---------------------------------------------------------------------------

use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;
use topk_baselines::{
    bitonic_topk as generic_bitonic, bucket_topk as generic_bucket, priority_queue_topk,
    radix_topk as generic_radix, reference_topk_min, sort_and_choose_topk, BitonicConfig,
    BucketConfig, RadixConfig, TopKKey,
};

/// Compare key vectors through their order-preserving bit images, so NaN
/// (which is `!=` itself as a float) still compares as a concrete multiset
/// element.
fn bits_of<K: TopKKey>(v: &[K]) -> Vec<K::Bits> {
    v.iter().map(|x| TopKKey::to_bits(*x)).collect()
}

/// f32 values with a heavy dose of the IEEE specials: NaN (both signs,
/// varied payloads), ±∞, ±0 and subnormals, on top of ordinary finite
/// values.
fn f32_with_specials() -> impl proptest::strategy::Strategy<Value = f32> {
    FnStrategy(|rng: &mut TestRng| match rng.next_below(12) {
        0 => f32::NAN,
        1 => -f32::NAN,
        2 => f32::from_bits(0x7FC0_0000 | (rng.next_u64() as u32 & 0x3F_FFFF)),
        3 => f32::INFINITY,
        4 => f32::NEG_INFINITY,
        5 => 0.0,
        6 => -0.0,
        7 => f32::from_bits(rng.next_u64() as u32 & 0x007F_FFFF), // subnormal
        _ => (rng.next_unit_f64() as f32 - 0.5) * 2.0e6,
    })
}

/// Check one key type end to end: dr_topk, all four baselines, the CPU
/// priority queue and the flag-radix top-k against the reference.
fn assert_all_agree<K: TopKKey>(device: &Device, data: &[K], k: usize) -> Result<(), String> {
    let expected = bits_of(&reference_topk(data, k));
    let mut got: Vec<(&str, Vec<K::Bits>)> = vec![
        (
            "dr_topk",
            bits_of(&dr_topk(device, data, k, &DrTopKConfig::default()).values),
        ),
        (
            "flag_radix",
            bits_of(&flag_radix_topk(device, data, k).values),
        ),
        (
            "radix",
            bits_of(&generic_radix(device, data, k, &RadixConfig::default()).values),
        ),
        (
            "radix_in_place",
            bits_of(&generic_radix(device, data, k, &RadixConfig::in_place()).values),
        ),
        (
            "bucket",
            bits_of(&generic_bucket(device, data, k, &BucketConfig::default()).values),
        ),
        (
            "bitonic",
            bits_of(&generic_bitonic(device, data, k, &BitonicConfig::default()).values),
        ),
        (
            "sort_and_choose",
            bits_of(&sort_and_choose_topk(device, data, k).values),
        ),
        (
            "priority_queue",
            bits_of(&priority_queue_topk(data, k).values),
        ),
    ];
    for (name, bits) in got.drain(..) {
        if bits != expected {
            return Err(format!("{name} disagrees with the reference for k={k}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// f32 keys (with NaN / ±0 / ±∞ / subnormals): every algorithm agrees
    /// with the total_cmp-ordered reference.
    #[test]
    fn f32_keys_agree_everywhere(
        data in proptest::collection::vec(f32_with_specials(), 1..1500),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        if let Err(msg) = assert_all_agree(&device, &data, k) {
            prop_assert!(false, "{}", msg);
        }
        // min-queries rank positive NaNs last
        let min = dr_topk_min(&device, &data, k, &DrTopKConfig::default());
        prop_assert_eq!(bits_of(&min.values), bits_of(&reference_topk_min(&data, k)));
    }

    /// i64 keys: negatives sort below positives through the sign-flip
    /// transform.
    #[test]
    fn i64_keys_agree_everywhere(
        data in proptest::collection::vec(any::<i64>(), 1..1500),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        if let Err(msg) = assert_all_agree(&device, &data, k) {
            prop_assert!(false, "{}", msg);
        }
        prop_assert!(
            reference_topk_min(&data, 1)[0] <= reference_topk(&data, 1)[0]
        );
    }

    /// u64 keys: the full 64-bit radix space (8 selection passes) works,
    /// including values with high bits set.
    #[test]
    fn u64_keys_agree_everywhere(
        data in proptest::collection::vec(any::<u64>(), 1..1500),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        if let Err(msg) = assert_all_agree(&device, &data, k) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// The f32 ↔ bits bijection round-trips bit-exactly and preserves the
    /// total_cmp order on arbitrary values (including NaN payloads).
    #[test]
    fn f32_bijection_is_order_preserving(
        a in f32_with_specials(),
        b in f32_with_specials(),
    ) {
        let (ab, bb) = (TopKKey::to_bits(a), TopKKey::to_bits(b));
        prop_assert_eq!(<f32 as TopKKey>::from_bits(ab).to_bits(), a.to_bits());
        prop_assert_eq!(ab.cmp(&bb), a.total_cmp(&b));
    }
}

// ---------------------------------------------------------------------------
// Radix-path properties: the forced multi-pass radix pipeline
// (`PathHint::Radix`) must be bit-identical to the forced delegate pipeline
// and the CPU reference for every key type, in both directions, including
// float specials and degenerate k (0, |V|, > |V|) — all under the threaded
// executor (`Device::with_host_threads`). `Auto` must reproduce whichever
// forced path the sampled crossover resolves, exactly.
// ---------------------------------------------------------------------------

use drtopk::core::{choose_path_sampled, dr_topk_min, ChosenPath, PathHint};

/// f64 twin of [`f32_with_specials`]: NaN payloads, ±∞, ±0, subnormals.
fn f64_with_specials() -> impl proptest::strategy::Strategy<Value = f64> {
    FnStrategy(|rng: &mut TestRng| match rng.next_below(12) {
        0 => f64::NAN,
        1 => -f64::NAN,
        2 => f64::from_bits(0x7FF8_0000_0000_0000 | (rng.next_u64() & 0x7_FFFF_FFFF_FFFF)),
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => 0.0,
        6 => -0.0,
        7 => f64::from_bits(rng.next_u64() & 0x000F_FFFF_FFFF_FFFF), // subnormal
        _ => (rng.next_unit_f64() - 0.5) * 2.0e12,
    })
}

/// Forced radix ≡ forced delegate ≡ reference, in both directions, and
/// `Auto` ≡ its resolved twin — all compared through order-preserving bit
/// images so NaN floats stay comparable.
fn assert_radix_path_agrees<K: TopKKey>(
    device: &Device,
    data: &[K],
    k: usize,
) -> Result<(), String> {
    let force = |path: PathHint| DrTopKConfig {
        path,
        ..DrTopKConfig::default()
    };
    let expected = bits_of(&reference_topk(data, k));
    let del = bits_of(&dr_topk(device, data, k, &force(PathHint::Delegate)).values);
    let rad = bits_of(&dr_topk(device, data, k, &force(PathHint::Radix)).values);
    let auto = bits_of(&dr_topk(device, data, k, &force(PathHint::Auto)).values);
    if del != expected {
        return Err(format!("delegate-forced disagrees with reference at k={k}"));
    }
    if rad != expected {
        return Err(format!("radix-forced disagrees with reference at k={k}"));
    }
    // Auto is one of the two forced paths — which one is the model's call,
    // but bit-identity to the reference is unconditional.
    if auto != expected {
        return Err(format!("Auto disagrees with reference at k={k}"));
    }
    // Min-direction: the Desc wrapper must flow through the radix stages
    // unchanged (NaNs rank last on min-queries).
    let expected_min = bits_of(&reference_topk_min(data, k));
    let rad_min = bits_of(&dr_topk_min(device, data, k, &force(PathHint::Radix)).values);
    if rad_min != expected_min {
        return Err(format!("radix-forced min-query disagrees at k={k}"));
    }
    Ok(())
}

/// Degenerate-k grid shared by every key type: 0, 1, mid, |V|, > |V|.
fn degenerate_ks(n: usize) -> [usize; 5] {
    [0, 1.min(n), n / 2, n, n + 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// u32 / i32 keys through the radix path, arbitrary data and k
    /// (including the degenerate grid).
    #[test]
    fn radix_path_agrees_u32_i32(
        data in proptest::collection::vec(any::<u32>(), 1..2000),
        k_frac in 0.0f64..1.0,
    ) {
        let device = device();
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        if let Err(msg) = assert_radix_path_agrees(&device, &data, k) {
            prop_assert!(false, "{}", msg);
        }
        let signed: Vec<i32> = data.iter().map(|&x| x as i32).collect();
        for dk in degenerate_ks(signed.len()) {
            if let Err(msg) = assert_radix_path_agrees(&device, &signed, dk) {
                prop_assert!(false, "i32: {}", msg);
            }
        }
    }

    /// u64 / i64 keys: the wide-key radix chain (8 passes) stays
    /// bit-identical, negatives included.
    #[test]
    fn radix_path_agrees_u64_i64(
        data in proptest::collection::vec(any::<u64>(), 1..2000),
        k_frac in 0.0f64..1.0,
    ) {
        let device = device();
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        if let Err(msg) = assert_radix_path_agrees(&device, &data, k) {
            prop_assert!(false, "{}", msg);
        }
        let signed: Vec<i64> = data.iter().map(|&x| x as i64).collect();
        for dk in degenerate_ks(signed.len()) {
            if let Err(msg) = assert_radix_path_agrees(&device, &signed, dk) {
                prop_assert!(false, "i64: {}", msg);
            }
        }
    }

    /// f32 / f64 keys with IEEE specials: NaN payloads survive the radix
    /// digit chain and the candidate gather bit-exactly.
    #[test]
    fn radix_path_agrees_floats_with_specials(
        data32 in proptest::collection::vec(f32_with_specials(), 1..1500),
        data64 in proptest::collection::vec(f64_with_specials(), 1..1500),
        k_frac in 0.0f64..1.0,
    ) {
        let device = device();
        let k32 = ((data32.len() as f64 * k_frac) as usize).clamp(1, data32.len());
        if let Err(msg) = assert_radix_path_agrees(&device, &data32, k32) {
            prop_assert!(false, "f32: {}", msg);
        }
        let k64 = ((data64.len() as f64 * k_frac) as usize).clamp(1, data64.len());
        if let Err(msg) = assert_radix_path_agrees(&device, &data64, k64) {
            prop_assert!(false, "f64: {}", msg);
        }
    }
}

/// The Auto crossover pin, consistent with the modeled microsecond
/// crossover: on large uniform inputs small k resolves to delegates and
/// very large k to radix, duplicate-heavy inputs stay on delegates at any
/// k, and `Auto`'s pipeline output is bit-identical either way.
#[test]
fn auto_crossover_pins_match_the_model() {
    let device = device();
    let spec = device.spec();
    let n = 1usize << 20;
    let uniform = topk_datagen::uniform(n, 7);
    let low = topk_datagen::low_entropy(n, topk_datagen::LOW_ENTROPY_DISTINCT, 7);
    assert_eq!(
        choose_path_sampled(&uniform, 64, spec),
        ChosenPath::Delegate,
        "small k on uniform must stay on delegates"
    );
    assert_eq!(
        choose_path_sampled(&uniform, 1 << 17, spec),
        ChosenPath::Radix,
        "large k on uniform must cross to radix"
    );
    for k in [64usize, 1 << 17] {
        assert_eq!(
            choose_path_sampled(&low, k, spec),
            ChosenPath::Delegate,
            "low-entropy data must stay on delegates at k={k}"
        );
    }
    // And the routed runs agree with the reference at the crossover's two
    // extremes on both datasets.
    for data in [&uniform, &low] {
        for k in [64usize, 1 << 17] {
            let auto = dr_topk(&device, data, k, &DrTopKConfig::default());
            assert_eq!(auto.values, reference_topk(data, k));
        }
    }
}
