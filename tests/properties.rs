//! Property-based tests (proptest) of the paper's rules and of the core data
//! structures' invariants.

use drtopk::core::{
    build_delegate_vector, dr_topk, first_topk, flag_radix_select_kth, flag_radix_topk,
    rule4_alpha, ConstructionMethod, DrTopKConfig, FlagSelectConfig,
};
use drtopk::prelude::*;
use proptest::prelude::*;
use topk_baselines::{reference_kth, reference_topk};

fn device() -> Device {
    Device::with_host_threads(DeviceSpec::v100s(), 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dr. Top-k returns exactly the reference top-k for arbitrary vectors,
    /// k, α, β and filtering choices (Rules 1–3 never lose an element).
    #[test]
    fn drtopk_equals_reference(
        data in proptest::collection::vec(any::<u32>(), 1..4000),
        k_frac in 0.0f64..1.0,
        alpha in 2u32..8,
        beta in 1usize..4,
        filtering in any::<bool>(),
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        let config = DrTopKConfig {
            alpha: Some(alpha),
            beta,
            filtering,
            ..DrTopKConfig::default()
        };
        let got = dr_topk(&device, &data, k, &config);
        prop_assert_eq!(got.values, reference_topk(&data, k));
    }

    /// The flag-based radix selection finds exactly the k-th largest value.
    #[test]
    fn flag_radix_select_equals_reference(
        data in proptest::collection::vec(any::<u32>(), 1..3000),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        let got = flag_radix_select_kth(&device, &data, k, &FlagSelectConfig::default());
        prop_assert_eq!(got.threshold, reference_kth(&data, k));
        let topk = flag_radix_topk(&device, &data, k);
        prop_assert_eq!(topk.values, reference_topk(&data, k));
    }

    /// Rule 2: the k-th delegate never exceeds the k-th element of V, so
    /// filtering by it can never discard a true top-k element.
    #[test]
    fn rule2_threshold_is_a_lower_bound(
        data in proptest::collection::vec(any::<u32>(), 64..3000),
        alpha in 2u32..7,
        beta in 1usize..3,
        k in 1usize..64,
    ) {
        let device = device();
        let k = k.min(data.len());
        let delegates = build_delegate_vector(&device, &data, alpha, beta, ConstructionMethod::Auto);
        // Rule 2 presupposes that the k-th delegate exists (k <= |D|); the
        // pipeline falls back to a plain top-k otherwise.
        prop_assume!(k <= delegates.len());
        let first = first_topk(&device, &delegates, k, false);
        let true_kth = reference_kth(&data, k);
        prop_assert!(first.threshold <= true_kth,
            "delegate threshold {} must not exceed the true k-th {}", first.threshold, true_kth);
    }

    /// Delegate construction is exact: the β delegates of every subrange are
    /// its β largest elements, and both construction kernels agree.
    #[test]
    fn delegate_construction_is_exact(
        data in proptest::collection::vec(any::<u32>(), 1..2000),
        alpha in 2u32..7,
        beta in 1usize..4,
    ) {
        let device = device();
        let warp = build_delegate_vector(&device, &data, alpha, beta, ConstructionMethod::WarpShuffle);
        let shared = build_delegate_vector(&device, &data, alpha, beta, ConstructionMethod::CoalescedShared);
        prop_assert_eq!(&warp.values, &shared.values);
        prop_assert_eq!(&warp.subrange_ids, &shared.subrange_ids);
        let size = 1usize << alpha;
        for (s, chunk) in data.chunks(size).enumerate() {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted.truncate(beta);
            let got: Vec<u32> = warp.values.iter().zip(&warp.subrange_ids)
                .filter(|&(_, &id)| id as usize == s)
                .map(|(&v, _)| v)
                .collect();
            prop_assert_eq!(got, sorted, "subrange {}", s);
        }
    }

    /// Rule 4 behaves monotonically: α never increases when k grows and
    /// never decreases when |V| grows.
    #[test]
    fn rule4_monotonicity(
        n_exp in 10u32..31,
        k_exp in 0u32..24,
        const_term in 0.0f64..4.0,
    ) {
        prop_assume!(k_exp < n_exp);
        let n = 1usize << n_exp;
        let k = 1usize << k_exp;
        let a = rule4_alpha(n, k, const_term);
        prop_assert!(rule4_alpha(n * 2, k, const_term) >= a);
        if k >= 2 {
            prop_assert!(rule4_alpha(n, k / 2, const_term) >= a);
        }
    }

    /// The baselines agree with each other on arbitrary data (differential
    /// testing of radix vs bucket vs bitonic).
    #[test]
    fn baselines_agree(
        data in proptest::collection::vec(any::<u32>(), 1..2500),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let device = device();
        let expected = reference_topk(&data, k);
        let radix = radix_topk(&device, &data, k, &topk_baselines::RadixConfig::default());
        let bucket = bucket_topk(&device, &data, k, &topk_baselines::BucketConfig::default());
        let bitonic = bitonic_topk(&device, &data, k, &topk_baselines::BitonicConfig::default());
        prop_assert_eq!(radix.values, expected.clone());
        prop_assert_eq!(bucket.values, expected.clone());
        prop_assert_eq!(bitonic.values, expected);
    }
}
