//! Integration tests of the workload-reduction trends the paper reports
//! (Figures 20–22) and of the per-phase accounting.

use drtopk::core::{dr_topk_with_stats, DrTopKConfig};
use drtopk::prelude::*;

fn device() -> Device {
    Device::with_host_threads(DeviceSpec::v100s(), 4)
}

#[test]
fn workload_fraction_shrinks_as_v_grows() {
    // Figure 20: the (delegate + concatenated) / |V| ratio decreases with |V|.
    let device = device();
    let k = 1 << 10;
    let mut last = f64::INFINITY;
    for exp in [14u32, 16, 18, 20] {
        let n = 1usize << exp;
        let data = topk_datagen::uniform(n, 3);
        let r = dr_topk_with_stats(&device, &data, k, &DrTopKConfig::default());
        let frac = r.workload.workload_fraction();
        assert!(
            frac < last,
            "fraction should shrink with |V|: {frac} at 2^{exp} vs {last}"
        );
        last = frac;
    }
}

#[test]
fn workload_fraction_grows_with_k() {
    // Figure 21: larger k means more delegates and more qualified subranges.
    // The trend is a property of the delegate pipeline, so pin the path —
    // under `PathHint::Auto` the largest-k point routes to the radix path.
    let device = device();
    let n = 1 << 18;
    let data = topk_datagen::uniform(n, 5);
    let config = DrTopKConfig {
        path: drtopk::core::PathHint::Delegate,
        ..DrTopKConfig::default()
    };
    let mut last = 0.0;
    for k_exp in [4u32, 8, 12, 14] {
        let r = dr_topk_with_stats(&device, &data, 1 << k_exp, &config);
        let frac = r.workload.workload_fraction();
        assert!(
            frac >= last,
            "fraction should grow with k: {frac} at 2^{k_exp} vs {last}"
        );
        last = frac;
    }
}

#[test]
fn drtopk_moves_fewer_bytes_than_baselines() {
    // Table 3's essence: Dr. Top-k reduces load transactions against every
    // baseline, reduces store transactions against the GGKS in-place radix
    // top-k the paper profiles, and keeps its own store traffic (the
    // delegate vector) a small fraction of |V|.
    let device = device();
    let n = 1 << 18;
    let k = 128;
    let data = topk_datagen::uniform(n, 9);
    let dr = dr_topk_with_stats(&device, &data, k, &DrTopKConfig::default());
    for algo in topk_baselines::BaselineAlgorithm::TOPK {
        let base = algo.run(&device, &data, k);
        assert!(
            dr.stats.global_load_transactions < base.stats.global_load_transactions,
            "{algo}: loads {} vs {}",
            dr.stats.global_load_transactions,
            base.stats.global_load_transactions
        );
    }
    let ggks_inplace = radix_topk(&device, &data, k, &topk_baselines::RadixConfig::in_place());
    assert!(
        dr.stats.global_store_transactions < ggks_inplace.stats.global_store_transactions,
        "stores {} vs GGKS in-place {}",
        dr.stats.global_store_transactions,
        ggks_inplace.stats.global_store_transactions
    );
    assert!(
        dr.stats.global_stored_bytes < (n as u64 * 4) / 8,
        "Dr. Top-k's own stores must stay a small fraction of |V|: {} bytes",
        dr.stats.global_stored_bytes
    );
}

#[test]
fn drtopk_is_faster_than_every_baseline_at_moderate_k() {
    // Figure 17/18's essence at a single operating point. The advantage
    // grows with |V| (Figure 17); 2^21 is already past the crossover.
    let device = device();
    let n = 1 << 21;
    let k = 1024;
    let data = topk_datagen::uniform(n, 21);
    let dr = dr_topk_with_stats(&device, &data, k, &DrTopKConfig::default());
    for algo in topk_baselines::BaselineAlgorithm::TOPK {
        let base = algo.run(&device, &data, k);
        assert!(
            dr.time_ms < base.time_ms,
            "{algo}: Dr. Top-k {:.3} ms should beat baseline {:.3} ms",
            dr.time_ms,
            base.time_ms
        );
    }
}

#[test]
fn bitonic_baseline_is_distribution_stable_but_bucket_is_not() {
    // Figure 4's essence: bitonic's modeled time is identical across
    // distributions, bucket's varies (CD is its adversarial case).
    let device = device();
    let n = 1 << 19;
    let k = 256;
    let ud = topk_datagen::uniform(n, 4);
    let cd = topk_datagen::customized(n, 4);
    let bit_ud = bitonic_topk(&device, &ud, k, &topk_baselines::BitonicConfig::default());
    let bit_cd = bitonic_topk(&device, &cd, k, &topk_baselines::BitonicConfig::default());
    let rel = (bit_ud.time_ms - bit_cd.time_ms).abs() / bit_ud.time_ms;
    assert!(rel < 0.05, "bitonic should be stable, diff {rel}");
    let buc_ud = bucket_topk(&device, &ud, k, &topk_baselines::BucketConfig::default());
    let buc_cd = bucket_topk(&device, &cd, k, &topk_baselines::BucketConfig::default());
    assert!(
        buc_cd.time_ms > 1.3 * buc_ud.time_ms,
        "bucket on CD ({:.3} ms) should be clearly slower than on UD ({:.3} ms)",
        buc_cd.time_ms,
        buc_ud.time_ms
    );
}
